"""Precision-policy parity tests.

Two contracts are locked here:

* the **float64 policy is bit-identical** to the historical kernels — every
  scoring/matching/indexing path called with an explicit ``policy="float64"``
  must return exactly the same bytes as the default call, and the default
  call itself is covered by the pre-existing identity suites;
* the **float32 policy stays within documented tolerances** — elementwise
  scores within ~1e-5 of float64 on unit-scale similarity values, p@1 and
  top-``k`` prefixes matching on well-separated problems, hubness vectors
  accumulated in float64.
"""

import numpy as np
import pytest

from repro.backend.precision import (
    FLOAT32,
    FLOAT64,
    as_score_matrix,
    resolve_policy,
)
from repro.core.config import HTCConfig
from repro.core.integration import integrate_alignment_matrices
from repro.nn import get_default_dtype, set_default_dtype
from repro.nn.tensor import Tensor
from repro.serve.index import build_index_from_embeddings
from repro.similarity import (
    ChunkedScorer,
    chunked_greedy_match,
    chunked_mutual_nearest_neighbors,
    chunked_score_matrix,
    chunked_top_k_indices,
    cosine_similarity,
    csls_matrix,
    lisi_matrix,
    pearson_similarity,
    streaming_hubness_degrees,
    top_k_indices,
)


@pytest.fixture(scope="module")
def embeddings():
    """A well-separated pair: row i of source truly matches row i of target."""
    rng = np.random.default_rng(7)
    base = rng.standard_normal((90, 24))
    source = base + 0.05 * rng.standard_normal(base.shape)
    target = base + 0.05 * rng.standard_normal(base.shape)
    return source, target


class TestResolvePolicy:
    def test_accepts_many_specs(self):
        assert resolve_policy(None) is FLOAT64
        assert resolve_policy("float64") is FLOAT64
        assert resolve_policy("float32") is FLOAT32
        assert resolve_policy(np.float32) is FLOAT32
        assert resolve_policy(np.dtype("float32")) is FLOAT32
        assert resolve_policy(FLOAT32) is FLOAT32

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="precision policy"):
            resolve_policy("float16")

    def test_accum_is_always_float64(self):
        for policy in (FLOAT64, FLOAT32):
            assert policy.accum_dtype == np.dtype(np.float64)

    def test_as_score_matrix_rules(self):
        assert as_score_matrix(np.zeros(3, dtype=np.float32)).dtype == np.float32
        assert as_score_matrix(np.zeros(3, dtype=np.float64)).dtype == np.float64
        assert as_score_matrix(np.zeros(3, dtype=np.int64)).dtype == np.float64
        arr = np.zeros((2, 2))
        assert as_score_matrix(arr) is arr  # no gratuitous copy


class TestFloat64BitIdentity:
    """policy='float64' must equal the policy-less historical call, bitwise."""

    @pytest.mark.parametrize(
        "kernel",
        [
            lambda s, t, **kw: pearson_similarity(s, t, **kw),
            lambda s, t, **kw: cosine_similarity(s, t, **kw),
            lambda s, t, **kw: lisi_matrix(s, t, n_neighbors=10, **kw),
            lambda s, t, **kw: csls_matrix(s, t, n_neighbors=10, **kw),
            lambda s, t, **kw: chunked_score_matrix(
                s, t, correction="lisi", chunk_rows=64, **kw
            ),
        ],
    )
    def test_score_kernels(self, embeddings, kernel):
        source, target = embeddings
        default = kernel(source, target)
        explicit = kernel(source, target, policy="float64", backend="numpy")
        assert default.dtype == np.float64
        assert np.array_equal(default, explicit)

    def test_chunked_matchers(self, embeddings):
        source, target = embeddings
        assert chunked_mutual_nearest_neighbors(
            source, target, chunk_rows=64
        ) == chunked_mutual_nearest_neighbors(
            source, target, chunk_rows=64, policy="float64"
        )
        assert chunked_greedy_match(
            source, target, chunk_rows=64
        ) == chunked_greedy_match(source, target, chunk_rows=64, policy="float64")
        assert np.array_equal(
            chunked_top_k_indices(source, target, 5, chunk_rows=64),
            chunked_top_k_indices(
                source, target, 5, chunk_rows=64, policy="float64"
            ),
        )

    def test_streaming_hubness(self, embeddings):
        source, target = embeddings
        plain = streaming_hubness_degrees(source, target, 10, chunk_rows=64)
        explicit = streaming_hubness_degrees(
            source, target, 10, chunk_rows=64, policy="float64"
        )
        assert np.array_equal(plain[0], explicit[0])
        assert np.array_equal(plain[1], explicit[1])

    def test_index_builder(self, embeddings):
        source, target = embeddings
        default = build_index_from_embeddings(source, target, k=5, correction="lisi")
        explicit = build_index_from_embeddings(
            source, target, k=5, correction="lisi", policy="float64"
        )
        assert np.array_equal(default.indices, explicit.indices)
        assert np.array_equal(default.scores, explicit.scores)
        assert default.score_dtype == np.float64

    def test_integration(self):
        rng = np.random.default_rng(3)
        matrices = {k: rng.standard_normal((20, 16)) for k in range(4)}
        counts = {0: 3, 1: 0, 2: 5, 3: 2}
        default, _ = integrate_alignment_matrices(matrices, counts, chunk_rows=7)
        explicit, _ = integrate_alignment_matrices(
            matrices, counts, chunk_rows=7, policy="float64"
        )
        assert np.array_equal(default, explicit)


class TestFloat32Tolerances:
    def test_scores_close_and_float32(self, embeddings):
        source, target = embeddings
        full64 = lisi_matrix(source, target, n_neighbors=10)
        full32 = lisi_matrix(source, target, n_neighbors=10, policy="float32")
        assert full32.dtype == np.float32
        # Similarity values live in [-1, 1]; the corrected scores in
        # [-4, 4] — 1e-4 absolute is the documented envelope.
        assert np.abs(full64 - full32).max() < 1e-4

    def test_chunked_float32_is_identical_to_dense_float32(self, embeddings):
        source, target = embeddings
        dense = lisi_matrix(source, target, n_neighbors=10, policy="float32")
        chunked = chunked_score_matrix(
            source,
            target,
            correction="lisi",
            n_neighbors=10,
            chunk_rows=64,
            policy="float32",
        )
        # The aligned-window bit-identity contract holds *within* a policy.
        assert np.array_equal(dense, chunked)

    def test_p_at_1_and_topk_prefix(self, embeddings):
        source, target = embeddings
        full64 = lisi_matrix(source, target, n_neighbors=10)
        full32 = lisi_matrix(source, target, n_neighbors=10, policy="float32")
        truth = np.arange(source.shape[0])
        p1_64 = float((full64.argmax(axis=1) == truth).mean())
        p1_32 = float((full32.argmax(axis=1) == truth).mean())
        assert abs(p1_64 - p1_32) <= 0.02
        top64 = top_k_indices(full64, 5)
        top32 = top_k_indices(full32, 5)
        # On this well-separated problem the top-1 prefix must agree.
        assert np.array_equal(top64[:, 0], top32[:, 0])

    def test_hubness_vectors_accumulate_in_float64(self, embeddings):
        source, target = embeddings
        scorer = ChunkedScorer(
            source, target, correction="lisi", chunk_rows=64, policy="float32"
        )
        source_hubness, target_hubness = scorer.hubness()
        assert source_hubness.dtype == np.float64
        assert target_hubness.dtype == np.float64
        sh64, th64 = streaming_hubness_degrees(source, target, 10, chunk_rows=64)
        assert np.abs(source_hubness - sh64).max() < 1e-5
        assert np.abs(target_hubness - th64).max() < 1e-5

    def test_integration_float32(self):
        rng = np.random.default_rng(3)
        matrices = {
            k: rng.standard_normal((30, 20)).astype(np.float32) for k in range(5)
        }
        counts = {k: k + 1 for k in range(5)}
        final32, importance = integrate_alignment_matrices(
            matrices, counts, policy="float32"
        )
        assert final32.dtype == np.float32
        final64, _ = integrate_alignment_matrices(
            {k: m.astype(np.float64) for k, m in matrices.items()}, counts
        )
        assert np.abs(final64 - final32).max() < 1e-5

    def test_index_builder_float32(self, embeddings):
        source, target = embeddings
        idx32 = build_index_from_embeddings(
            source, target, k=5, correction="lisi", policy="float32"
        )
        idx64 = build_index_from_embeddings(
            source, target, k=5, correction="lisi"
        )
        assert idx32.score_dtype == np.float32
        assert idx32.nbytes < idx64.nbytes
        # Best-candidate prefix agrees on a well-separated problem.
        assert np.array_equal(idx32.indices[:, 0], idx64.indices[:, 0])

    def test_aligner_end_to_end_float32(self, small_pair):
        from repro.core import HTCAligner

        result32 = HTCAligner(
            HTCConfig(
                epochs=4, embedding_dim=8, orbits=range(3), compute_dtype="float32"
            )
        ).align(small_pair)
        result64 = HTCAligner(
            HTCConfig(epochs=4, embedding_dim=8, orbits=range(3))
        ).align(small_pair)
        assert result32.alignment_matrix.dtype == np.float32
        match32 = result32.alignment_matrix.argmax(axis=1)
        match64 = result64.alignment_matrix.argmax(axis=1)
        assert (match32 == match64).mean() >= 0.95


class TestOutBufferPolicyValidation:
    """The pre-allocated ``out`` checks are dtype-policy-aware (satellite)."""

    def test_float64_policy_rejects_float32_out_naming_policy(self, embeddings):
        source, target = embeddings
        out = np.empty((source.shape[0], target.shape[0]), dtype=np.float32)
        with pytest.raises(ValueError, match="policy 'float64'"):
            pearson_similarity(source, target, out=out)

    def test_float32_policy_rejects_float64_out_naming_policy(self, embeddings):
        source, target = embeddings
        out = np.empty((source.shape[0], target.shape[0]), dtype=np.float64)
        with pytest.raises(ValueError, match="policy 'float32'"):
            pearson_similarity(source, target, out=out, policy="float32")

    def test_float32_out_accepted_under_float32_policy(self, embeddings):
        source, target = embeddings
        out = np.empty((source.shape[0], target.shape[0]), dtype=np.float32)
        got = lisi_matrix(
            source, target, n_neighbors=10, out=out, policy="float32"
        )
        assert got is out

    def test_chunked_full_matrix_out_validation(self, embeddings):
        source, target = embeddings
        scorer = ChunkedScorer(source, target, correction="lisi", policy="float32")
        bad = np.empty((source.shape[0], target.shape[0]), dtype=np.float64)
        with pytest.raises(ValueError, match="policy 'float32'"):
            scorer.full_matrix(out=bad)
        good = np.empty((source.shape[0], target.shape[0]), dtype=np.float32)
        assert scorer.full_matrix(out=good) is good

    def test_csls_out_validation_names_policy(self, embeddings):
        source, target = embeddings
        out = np.empty((source.shape[0], target.shape[0]), dtype=np.float32)
        with pytest.raises(ValueError, match="policy 'float64'"):
            csls_matrix(source, target, out=out)
        got = csls_matrix(source, target, out=out, policy="float32")
        assert got is out

    def test_wrong_shape_still_rejected(self, embeddings):
        source, target = embeddings
        out = np.empty((3, 3), dtype=np.float64)
        with pytest.raises(ValueError, match="shape"):
            pearson_similarity(source, target, out=out)


class TestMatchingDtypePreservation:
    def test_float32_matrix_not_upcast(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((40, 30)).astype(np.float32)
        top32 = top_k_indices(scores, 4)
        top64 = top_k_indices(scores.astype(np.float64), 4)
        # float32 -> float64 is exact, so selection must agree.
        assert np.array_equal(top32, top64)

    def test_int_matrix_still_promoted(self):
        scores = np.arange(12).reshape(3, 4)
        assert np.array_equal(
            top_k_indices(scores, 2), top_k_indices(scores.astype(float), 2)
        )


class TestTensorDtype:
    def test_default_dtype_round_trip(self):
        assert get_default_dtype() == np.dtype(np.float64)
        previous = set_default_dtype(np.float32)
        try:
            assert get_default_dtype() == np.dtype(np.float32)
            assert Tensor([1, 2, 3]).data.dtype == np.float32
        finally:
            set_default_dtype(previous)
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_explicit_dtype_wins(self):
        assert Tensor([1.0, 2.0], dtype=np.float32).data.dtype == np.float32

    def test_floating_input_preserved(self):
        data = np.ones(3, dtype=np.float32)
        assert Tensor(data).data.dtype == np.float32

    def test_invalid_default_dtype_rejected(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            set_default_dtype(np.int32)

    def test_float32_gradients_stay_float32(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.full((2, 2), 2.0, dtype=np.float32), requires_grad=True)
        loss = (a * b).sum()
        loss.backward()
        assert a.grad.dtype == np.float32
        assert b.grad.dtype == np.float32
        assert np.allclose(a.grad, 2.0)

    def test_float64_autograd_unchanged(self):
        a = Tensor(np.arange(4.0).reshape(2, 2), requires_grad=True)
        (a * a).sum().backward()
        assert a.grad.dtype == np.float64
        assert np.array_equal(a.grad, 2.0 * a.data)
