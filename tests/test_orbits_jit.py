"""Tests for the numba-JIT orbit backend (:mod:`repro.orbits.jit`).

The JIT kernel computes the same per-edge :class:`EdgeStatistics` the numpy
backend derives from bit-packed adjacency masks, and the orbit assembly is
literally shared with the numpy path — so bit-identity is validated here on
the *uncompiled* kernel (plain Python), which is the identical function
object numba compiles when it is installed.  The numba CI leg runs this same
suite with the compiled kernel.
"""

import importlib.util

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.orbits import engine, jit

pytestmark = pytest.mark.skipif(
    "numpy" not in engine.available_backends(),
    reason="vectorized orbit backend unavailable (numpy < 2.0)",
)

NUMBA_PRESENT = importlib.util.find_spec("numba") is not None


def _kernel_statistics(graph):
    """Run the kernel uncompiled so the suite works without numba."""
    adjacency = graph.adjacency
    edge_array = np.asarray(graph.edge_list(), dtype=np.int64)
    return jit._edge_statistics_kernel(
        adjacency.indptr.astype(np.int64),
        adjacency.indices.astype(np.int64),
        graph.degrees.astype(np.int64),
        np.ascontiguousarray(edge_array[:, 0]),
        np.ascontiguousarray(edge_array[:, 1]),
        graph.n_nodes,
    )


def _assert_jit_identical(graph):
    reference = engine.count_edge_orbits(graph, backend="numpy")
    fast = jit.count_edge_orbits_jit(graph)
    assert reference.edges == fast.edges
    np.testing.assert_array_equal(reference.counts, fast.counts)
    assert fast.counts.dtype == np.int64

    reference_gdv = engine.count_node_orbits(graph, backend="numpy")
    fast_gdv = jit.count_node_orbits_jit(graph)
    np.testing.assert_array_equal(reference_gdv, fast_gdv)
    assert fast_gdv.dtype == np.int64


class TestCrossValidation:
    """JIT backend == numpy backend, bit for bit (uncompiled kernel)."""

    @pytest.mark.parametrize("seed", range(15))
    def test_erdos_renyi(self, seed):
        graph = erdos_renyi_graph(
            20 + 3 * seed, 0.5 + 0.4 * seed, random_state=seed
        )
        _assert_jit_identical(graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_powerlaw_cluster(self, seed):
        graph = powerlaw_cluster_graph(
            15 + 3 * seed, 2 + seed % 3, 0.7, random_state=seed
        )
        _assert_jit_identical(graph)

    def test_structured_graphs(self):
        for edges, n in [
            ([(0, 1)], 2),  # single edge
            ([(0, 1), (1, 2), (2, 0)], 3),  # triangle
            ([(0, 1), (1, 2), (2, 3), (3, 0)], 4),  # 4-cycle
            ([(i, j) for i in range(5) for j in range(i + 1, 5)], 5),  # K5
            ([(0, i) for i in range(1, 7)], 7),  # star
        ]:
            _assert_jit_identical(from_edge_list(edges, n_nodes=n))

    def test_empty_graph(self):
        graph = from_edge_list([], n_nodes=5)
        stats = jit.compute_edge_statistics_jit(graph)
        assert stats.edges == []
        np.testing.assert_array_equal(
            jit.count_node_orbits_jit(graph),
            engine.count_node_orbits(graph, backend="numpy"),
        )


class TestRegistration:
    def test_registered_under_orbit_kind(self):
        registry = engine.orbit_registry()
        assert "numba" in registry.names()
        assert registry.is_available("numba") is NUMBA_PRESENT

    def test_availability_probe_matches_find_spec(self):
        assert jit.numba_available() is NUMBA_PRESENT

    def test_engine_routes_to_jit_backend_when_available(self):
        if not NUMBA_PRESENT:
            pytest.skip("numba not installed")
        graph = erdos_renyi_graph(40, 4.0, random_state=3)
        np.testing.assert_array_equal(
            engine.count_node_orbits(graph, backend="numba"),
            engine.count_node_orbits(graph, backend="numpy"),
        )

    def test_verified_backend_shares_cache_namespace(self):
        # The numba backend is in the verified set: its results land under
        # the plain content-hash key, interchangeable with numpy's.
        assert "numba" in engine._VERIFIED_BACKENDS

    def test_kernel_statistics_match_vectorized(self):
        from repro.orbits.vectorized import compute_edge_statistics

        graph = erdos_renyi_graph(60, 6.0, random_state=5)
        expected = compute_edge_statistics(graph)
        raw = _kernel_statistics(graph)
        for column, name in enumerate(
            ("t", "na", "nb", "e_aa", "e_bb", "e_cc",
             "e_ab", "e_ac", "e_bc", "p_a", "p_b", "p_c")
        ):
            np.testing.assert_array_equal(
                raw[:, column], getattr(expected, name), err_msg=name
            )
