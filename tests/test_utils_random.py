"""Tests for repro.utils.random."""

import numpy as np
import pytest

from repro.utils.random import (
    check_random_state,
    seed_everything,
    spawn_generators,
)


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).random(5)
        b = check_random_state(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert check_random_state(rng) is rng

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            check_random_state("not-a-seed")

    def test_numpy_integer_accepted(self):
        rng = check_random_state(np.int64(7))
        assert isinstance(rng, np.random.Generator)


class TestSeedEverything:
    def test_returns_generator(self):
        assert isinstance(seed_everything(0), np.random.Generator)

    def test_reseeds_global_numpy(self):
        seed_everything(123)
        a = np.random.random(3)
        seed_everything(123)
        b = np.random.random(3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            seed_everything(1.5)


class TestSpawnGenerators:
    def test_count(self):
        children = spawn_generators(0, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_generators(0, 2)
        assert not np.array_equal(children[0].random(5), children[1].random(5))

    def test_deterministic_given_seed(self):
        a = [g.random(3) for g in spawn_generators(5, 3)]
        b = [g.random(3) for g in spawn_generators(5, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count_ok(self):
        assert spawn_generators(0, 0) == []
