"""Cross-module property-based tests.

These check invariants that tie several subsystems together: isomorphism
invariance of orbit counting, permutation equivariance of the encoder, and
scale/translation invariance of the similarity scores — the properties the
paper's theory implicitly relies on.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_networkx
from repro.graph.laplacian import orbit_laplacian
from repro.graph.perturbation import permute_graph
from repro.orbits.edge_orbits import count_edge_orbits
from repro.orbits.node_orbits import count_node_orbits
from repro.orbits.orbit_matrix import build_orbit_matrices
from repro.similarity.lisi import lisi_matrix
from repro.similarity.measures import pearson_similarity
from repro.utils.sparse import is_symmetric


def _random_graph(seed: int, n: int = 12, p: float = 0.3):
    return from_networkx(nx.gnp_random_graph(n, p, seed=seed))


class TestOrbitInvariance:
    @given(st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_edge_orbit_totals_invariant_under_permutation(self, seed):
        """Relabelling nodes must not change how often each orbit occurs."""
        graph = _random_graph(seed)
        permuted, _ = permute_graph(graph, random_state=seed + 1)
        original = count_edge_orbits(graph)
        relabelled = count_edge_orbits(permuted)
        for orbit in range(13):
            assert original.orbit_total(orbit) == relabelled.orbit_total(orbit)

    @given(st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_node_orbit_counts_permute_with_the_nodes(self, seed):
        graph = _random_graph(seed)
        permuted, mapping = permute_graph(graph, random_state=seed + 1)
        original = count_node_orbits(graph)
        relabelled = count_node_orbits(permuted)
        np.testing.assert_array_equal(original, relabelled[mapping])

    @given(st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_gom_matrices_always_symmetric_nonnegative(self, seed):
        graph = _random_graph(seed)
        for matrix in build_orbit_matrices(graph, orbits=[0, 1, 2, 3, 4]):
            assert is_symmetric(matrix)
            assert matrix.nnz == 0 or matrix.data.min() >= 0

    @given(st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_orbit_laplacian_eigenvalues_bounded(self, seed):
        graph = _random_graph(seed, n=10)
        for matrix in build_orbit_matrices(graph, orbits=[0, 2]):
            laplacian = orbit_laplacian(matrix).toarray()
            eigenvalues = np.linalg.eigvalsh(laplacian)
            assert np.abs(eigenvalues).max() <= 1.0 + 1e-8


class TestSimilarityInvariance:
    @given(st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_pearson_invariant_to_affine_row_transforms(self, seed):
        rng = np.random.default_rng(seed)
        source = rng.normal(size=(6, 8))
        target = rng.normal(size=(7, 8))
        transformed = 3.5 * source - 2.0
        np.testing.assert_allclose(
            pearson_similarity(source, target),
            pearson_similarity(transformed, target),
            atol=1e-9,
        )

    @given(st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_lisi_of_identical_sets_prefers_the_diagonal(self, seed):
        rng = np.random.default_rng(seed)
        embeddings = rng.normal(size=(9, 6))
        scores = lisi_matrix(embeddings, embeddings.copy(), n_neighbors=3)
        assert (scores.argmax(axis=1) == np.arange(9)).mean() >= 0.8

    @given(st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_lisi_bounded_by_construction(self, seed):
        rng = np.random.default_rng(seed)
        source = rng.normal(size=(6, 5))
        target = rng.normal(size=(8, 5))
        scores = lisi_matrix(source, target, n_neighbors=2)
        # 2*corr in [-2, 2] and each hubness term in [-1, 1].
        assert scores.max() <= 4.0 + 1e-9
        assert scores.min() >= -4.0 - 1e-9
