"""End-to-end tests for sharded alignment through the runner machinery."""

import json

import numpy as np
import pytest

import repro
from repro.core import HTCConfig
from repro.datasets.synthetic import tiny_pair
from repro.eval.protocol import run_method
from repro.runner import SuiteSpec, resolve_method, run_suite
from repro.serve import AlignmentService, save_index_artifact
from repro.shard import ShardedAligner, align_sharded

FAST = dict(epochs=3, embedding_dim=8, orbit_cache="off", random_state=0)


@pytest.fixture(scope="module")
def pair():
    return tiny_pair(n_nodes=50, random_state=0)


@pytest.fixture(scope="module")
def fast_config():
    return HTCConfig(**FAST)


@pytest.fixture(scope="module")
def stitched(pair, fast_config):
    return align_sharded(pair, fast_config, shard_count=2, refine_iterations=1)


class TestAlignSharded:
    def test_shape_and_coverage(self, pair, stitched):
        assert stitched.shape == (pair.source.n_nodes, pair.target.n_nodes)
        # every source node belongs to a core shard, so every row has a match
        matches = stitched.match(np.arange(pair.source.n_nodes))
        assert np.all(matches >= 0)

    def test_stage_times_and_shard_stats(self, stitched):
        assert set(stitched.stage_times) == {
            "partition",
            "shard_alignment",
            "stitch",
            "refine",
        }
        assert len(stitched.shard_stats) == 2
        assert all(s["status"] == "done" for s in stitched.shard_stats)
        assert all("p@1" in s["metrics"] for s in stitched.shard_stats)

    def test_deterministic_across_runs(self, pair, fast_config, stitched):
        again = align_sharded(
            pair, fast_config, shard_count=2, refine_iterations=1
        )
        assert np.array_equal(again.index.indices, stitched.index.indices)
        assert np.array_equal(again.index.scores, stitched.index.scores)

    def test_requires_a_shard_count(self, pair, fast_config):
        with pytest.raises(ValueError, match="shard_count"):
            align_sharded(pair, fast_config)

    def test_resume_reuses_shard_artifacts(self, pair, fast_config, tmp_path):
        first = align_sharded(
            pair,
            fast_config,
            shard_count=2,
            workdir=tmp_path,
            resume=True,
            refine_iterations=0,
        )
        assert [s["status"] for s in first.shard_stats] == ["done", "done"]
        second = align_sharded(
            pair,
            fast_config,
            shard_count=2,
            workdir=tmp_path,
            resume=True,
            refine_iterations=0,
        )
        assert [s["status"] for s in second.shard_stats] == ["cached", "cached"]
        assert np.array_equal(first.index.indices, second.index.indices)
        assert np.array_equal(first.index.scores, second.index.scores)

    def test_accuracy_not_far_from_single_shot(self, pair, fast_config, stitched):
        from repro.core import HTCAligner

        single = HTCAligner(fast_config).align(pair)
        p1_single = float(
            (single.alignment_matrix.argmax(axis=1) == pair.ground_truth).mean()
        )
        p1_sharded = float(
            (stitched.match(np.arange(pair.source.n_nodes)) == pair.ground_truth)
            .mean()
        )
        assert p1_sharded >= p1_single - 0.25


class TestShardedAligner:
    def test_resolve_method_routes_on_shard_count(self):
        config = HTCConfig(shard_count=2, **FAST)
        assert isinstance(resolve_method("HTC", config), ShardedAligner)
        from repro.core import HTCAligner

        assert isinstance(resolve_method("HTC", HTCConfig(**FAST)), HTCAligner)

    def test_rejects_config_without_shard_count(self):
        with pytest.raises(ValueError, match="shard_count"):
            ShardedAligner(HTCConfig(**FAST))

    def test_run_method_protocol(self, pair):
        aligner = ShardedAligner(HTCConfig(shard_count=2, **FAST))
        outcome = run_method(aligner, pair)
        assert outcome.method == "HTC"
        assert 0.0 <= outcome.metrics["p@1"] <= 1.0
        assert aligner.last_stitched_ is not None

    def test_run_suite_with_sharded_config(self, tmp_path):
        suite = SuiteSpec(
            name="sharded-suite",
            datasets=[{"name": "tiny", "params": {"n_nodes": 50}}],
            methods=["HTC"],
            config=dict(shard_count=2, **FAST),
        )
        report = run_suite(suite, tmp_path)
        assert report.counts == {"done": 1}
        artifact = report.artifacts[0]
        assert artifact["result"]["metrics"]["p@1"] >= 0.0


class TestServingStitched:
    def test_stitched_index_is_servable(self, stitched, tmp_path):
        config = HTCConfig(shard_count=2, **FAST)
        info = save_index_artifact(
            stitched.index,
            config,
            root=tmp_path,
            name="tiny-stitched",
            metadata={"sharded": True},
        )
        service = AlignmentService()
        aid = service.load(tmp_path, info.artifact_id)
        nodes = np.arange(10)
        assert np.array_equal(service.match(aid, nodes), stitched.match(nodes))
        assert np.array_equal(
            service.top_k(aid, nodes, 3), stitched.top_k(nodes, 3)
        )


    def test_resave_refreshes_metadata(self, stitched, tmp_path):
        first = save_index_artifact(
            stitched.index, root=tmp_path, name="meta", metadata={"run": 1}
        )
        second = save_index_artifact(
            stitched.index, root=tmp_path, name="meta", metadata={"run": 2}
        )
        assert second.artifact_id == first.artifact_id  # content-addressed
        assert second.manifest["metadata"] == {"run": 2}


class TestCLISharded:
    def test_align_with_shards_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "align",
                "--dataset",
                "tiny",
                "--shards",
                "2",
                "--epochs",
                "3",
                "--dim",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HTC on tiny" in out
        assert "p@1" in out


class TestResumeVersionWarning:
    def test_version_recorded_in_artifacts_and_manifest(self, tmp_path):
        suite = SuiteSpec(
            name="versioned", datasets=["tiny"], methods=["Degree"]
        )
        report = run_suite(suite, tmp_path)
        assert report.artifacts[0]["repro_version"] == repro.__version__
        manifest = json.loads(report.manifest_path.read_text())
        assert manifest["repro_version"] == repro.__version__

    def test_resume_warns_on_version_mismatch(self, tmp_path, caplog):
        suite = SuiteSpec(
            name="versioned", datasets=["tiny"], methods=["Degree"]
        )
        report = run_suite(suite, tmp_path)
        artifact_path = (
            report.suite_dir / "jobs" / f"{report.artifacts[0]['job_id']}.json"
        )
        payload = json.loads(artifact_path.read_text())
        payload["repro_version"] = "0.0.1"
        artifact_path.write_text(json.dumps(payload))

        with caplog.at_level("WARNING", logger="repro.runner.executor"):
            resumed = run_suite(suite, tmp_path, resume=True)
        assert resumed.counts == {"cached": 1}  # reused, not silently skipped
        messages = [r.message for r in caplog.records]
        assert any(
            "0.0.1" in m and repro.__version__ in m for m in messages
        ), messages

    def test_resume_same_version_does_not_warn(self, tmp_path, caplog):
        suite = SuiteSpec(
            name="versioned", datasets=["tiny"], methods=["Degree"]
        )
        run_suite(suite, tmp_path)
        with caplog.at_level("WARNING", logger="repro.runner.executor"):
            resumed = run_suite(suite, tmp_path, resume=True)
        assert resumed.counts == {"cached": 1}
        assert not caplog.records
