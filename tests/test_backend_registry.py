"""Tests for the shared backend registry / compute-backend layer."""

import numpy as np
import pytest

from repro.backend import (
    AUTO_BACKEND,
    BackendRegistry,
    BackendUnavailableError,
    ComputeBackend,
    available_compute_backends,
    compute_registry,
    get_compute_backend,
    get_registry,
    registered_kinds,
    resolve_compute_backend,
)
from repro.core import HTCConfig
from repro.orbits import engine
from repro.similarity import pearson_similarity


class TestBackendRegistry:
    def test_register_and_resolve(self):
        registry = BackendRegistry("test-kind")
        registry.register("slow", "slow-impl", priority=0)
        registry.register("fast", "fast-impl", priority=10)
        assert registry.names() == ("fast", "slow")
        assert registry.available() == ("fast", "slow")
        assert registry.default() == "fast"
        assert registry.resolve(AUTO_BACKEND) == "fast"
        assert registry.resolve("slow") == "slow"
        assert registry.get("slow") == "slow-impl"
        assert registry.get() == "fast-impl"

    def test_priority_tie_breaks_alphabetically(self):
        registry = BackendRegistry("ties")
        registry.register("zeta", 1, priority=5)
        registry.register("alpha", 2, priority=5)
        assert registry.default() == "zeta"  # max((5,'zeta')) > (5,'alpha')

    def test_auto_is_reserved(self):
        registry = BackendRegistry("reserved")
        with pytest.raises(ValueError, match="reserved"):
            registry.register(AUTO_BACKEND, object())

    def test_empty_name_rejected(self):
        registry = BackendRegistry("empty")
        with pytest.raises(ValueError, match="non-empty"):
            registry.register("", object())

    def test_unknown_backend_error_lists_choices(self):
        registry = BackendRegistry("choices")
        registry.register("numpy", object())
        with pytest.raises(ValueError, match="unknown choices backend"):
            registry.resolve("cuda")

    def test_unavailable_backend(self):
        registry = BackendRegistry("gated")
        registry.register("base", "base-impl", priority=0)
        registry.register("accel", "accel-impl", priority=10, available=False)
        assert registry.names() == ("accel", "base")
        assert registry.available() == ("base",)
        assert registry.default() == "base"
        with pytest.raises(BackendUnavailableError, match="not available"):
            registry.resolve("accel")

    def test_availability_predicate_is_lazy(self):
        state = {"ready": False}
        registry = BackendRegistry("lazy")
        registry.register("base", 1, priority=0)
        registry.register("accel", 2, priority=10, available=lambda: state["ready"])
        assert registry.default() == "base"
        state["ready"] = True
        assert registry.default() == "accel"

    def test_no_available_backend(self):
        registry = BackendRegistry("void")
        with pytest.raises(BackendUnavailableError, match="no void backend"):
            registry.default()

    def test_unregister(self):
        registry = BackendRegistry("gone")
        registry.register("x", 1)
        registry.unregister("x")
        assert registry.names() == ()
        registry.unregister("x")  # idempotent

    def test_get_registry_is_global_and_cached(self):
        a = get_registry("shared-kind-test")
        b = get_registry("shared-kind-test")
        assert a is b
        assert "shared-kind-test" in registered_kinds()

    def test_describe_snapshot(self):
        registry = BackendRegistry("described")
        registry.register("base", 1, priority=0)
        registry.register("accel", 2, priority=10, available=False)
        assert registry.describe() == {
            "accel": {"available": False, "priority": 10},
            "base": {"available": True, "priority": 0},
        }
        assert registry.priority("accel") == 10
        with pytest.raises(ValueError, match="unknown described backend"):
            registry.priority("nope")

    def test_broken_predicate_marks_unavailable(self):
        """A predicate that raises must not take auto-resolution down."""

        def broken():
            raise ImportError("accel extension failed to load")

        registry = BackendRegistry("fragile")
        registry.register("base", 1, priority=0)
        registry.register("accel", 2, priority=10, available=broken)
        assert registry.available() == ("base",)
        assert registry.default() == "base"
        assert registry.describe()["accel"]["available"] is False

    def test_broken_backend_resolution_names_backend_and_kind(self):
        def broken():
            raise RuntimeError("corrupt install")

        registry = BackendRegistry("fragile-kind")
        registry.register("base", 1, priority=0)
        registry.register("accel", 2, priority=10, available=broken)
        with pytest.raises(BackendUnavailableError) as excinfo:
            registry.resolve("accel")
        message = str(excinfo.value)
        assert "accel" in message
        assert "fragile-kind" in message
        assert "corrupt install" in message


class TestComputeRegistry:
    def test_numpy_is_registered_and_default(self):
        assert "numpy" in available_compute_backends()
        assert resolve_compute_backend() == "numpy"
        assert resolve_compute_backend("numpy") == "numpy"

    def test_get_compute_backend_matmul(self):
        kernel = get_compute_backend()
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = np.empty((2, 4))
        assert np.array_equal(kernel.matmul(a, b, out), a @ b)

    def test_custom_backend_flows_through_similarity(self):
        calls = []

        def counting_matmul(a, b, out):
            calls.append(a.shape)
            return np.matmul(a, b, out=out)

        registry = compute_registry()
        registry.register(
            "counting", ComputeBackend(name="counting", matmul=counting_matmul)
        )
        try:
            rng = np.random.default_rng(0)
            s, t = rng.standard_normal((70, 8)), rng.standard_normal((50, 8))
            got = pearson_similarity(s, t, backend="counting")
            assert calls, "custom backend matmul was never invoked"
            assert np.array_equal(got, pearson_similarity(s, t))
        finally:
            registry.unregister("counting")


class TestOrbitRegistryIntegration:
    def test_orbit_counters_registered_in_shared_registry(self):
        registry = get_registry(engine.ORBIT_KIND)
        assert "python" in registry.available()
        assert set(registry.available()) == set(engine.available_backends())
        assert registry.resolve(AUTO_BACKEND) == engine.DEFAULT_BACKEND

    def test_shared_registry_impl_is_orbit_backend(self):
        implementation = get_registry(engine.ORBIT_KIND).get("python")
        assert isinstance(implementation, engine.OrbitBackend)
        assert implementation.name == "python"

    def test_non_orbit_impl_rejected_by_engine(self):
        registry = get_registry(engine.ORBIT_KIND)
        registry.register("bogus", "not-an-orbit-backend")
        try:
            from repro.graph.builders import from_edge_list

            graph = from_edge_list([(0, 1)], n_nodes=2)
            with pytest.raises(TypeError, match="not an OrbitBackend"):
                engine.count_edge_orbits(graph, backend="bogus")
        finally:
            registry.unregister("bogus")


class TestAbsentAcceleratorBehavior:
    """Registry behavior when an accelerated backend's dependency is absent.

    The assertions are phrased so they hold on every environment: with
    numba installed the backend is available and wins auto; without it the
    registry silently falls back to numpy — never a warning either way.
    """

    def test_auto_resolves_without_warning(self, recwarn):
        import importlib.util

        resolved = engine.resolve_backend(AUTO_BACKEND)
        if importlib.util.find_spec("numba") is None:
            assert resolved == "numpy"
        else:
            assert resolved == "numba"
        assert len(recwarn) == 0

    def test_numba_registered_with_top_priority(self):
        registry = engine.orbit_registry()
        assert "numba" in registry.names()
        assert registry.priority("numba") > registry.priority("numpy")
        assert registry.priority("numpy") > registry.priority("python")

    def test_requesting_absent_numba_names_backend_and_kind(self):
        import importlib.util

        if importlib.util.find_spec("numba") is not None:
            pytest.skip("numba installed: the backend is available here")
        with pytest.raises(BackendUnavailableError) as excinfo:
            engine.resolve_backend("numba")
        message = str(excinfo.value)
        assert "numba" in message and engine.ORBIT_KIND in message


class TestConfigBackendFields:
    def test_defaults_validate(self):
        config = HTCConfig()
        assert config.compute_dtype == "float64"
        assert config.backend == "auto"
        assert config.precision_policy.is_exact

    def test_float32_policy(self):
        config = HTCConfig(compute_dtype="float32")
        assert config.precision_policy.compute_dtype == np.dtype(np.float32)
        assert config.precision_policy.accum_dtype == np.dtype(np.float64)

    def test_bad_compute_dtype_rejected(self):
        with pytest.raises(ValueError, match="precision policy"):
            HTCConfig(compute_dtype="float16")

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="compute backend"):
            HTCConfig(backend="cuda")

    def test_orbit_backend_alias_still_validates(self):
        with pytest.raises(ValueError, match="orbit_backend"):
            HTCConfig(orbit_backend="fortran")
