"""Tests for node-orbit (GDV) counting."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_networkx
from repro.orbits.brute_force import brute_force_node_orbits
from repro.orbits.graphlets import NODE_ORBIT_COUNT
from repro.orbits.node_orbits import count_node_orbits, graphlet_degree_vectors


class TestCanonicalGraphlets:
    def test_triangle(self, triangle_graph):
        counts = count_node_orbits(triangle_graph)
        for node in range(3):
            assert counts[node, 0] == 2  # degree
            assert counts[node, 3] == 1  # one triangle
            assert counts[node, 1] == 0 and counts[node, 2] == 0

    def test_path4(self, path_graph):
        counts = count_node_orbits(path_graph)
        # End nodes: orbit 4 (path end); middle nodes: orbit 5.
        assert counts[0, 4] == 1 and counts[0, 5] == 0
        assert counts[1, 5] == 1 and counts[1, 4] == 0
        # Two-edge chain orbits.
        assert counts[0, 1] == 1  # end of one 2-chain
        assert counts[1, 2] == 1  # middle of one 2-chain

    def test_star(self, star_graph):
        counts = count_node_orbits(star_graph)
        assert counts[0, 7] == 1  # centre
        for leaf in (1, 2, 3):
            assert counts[leaf, 6] == 1
        assert counts[0, 2] == 3  # centre of three 2-chains

    def test_clique(self, clique_graph):
        counts = count_node_orbits(clique_graph)
        for node in range(4):
            assert counts[node, 14] == 1
            assert counts[node, 3] == 3  # each node in 3 triangles

    def test_paw(self, paw_graph):
        counts = count_node_orbits(paw_graph)
        assert counts[3, 9] == 1  # pendant
        assert counts[2, 11] == 1  # attachment node
        assert counts[0, 10] == 1 and counts[1, 10] == 1

    def test_diamond(self, diamond_graph):
        counts = count_node_orbits(diamond_graph)
        assert counts[1, 13] == 1 and counts[3, 13] == 1  # degree-3 nodes
        assert counts[0, 12] == 1 and counts[2, 12] == 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        nx_graph = nx.gnp_random_graph(12, 0.3, seed=seed)
        graph = from_networkx(nx_graph)
        np.testing.assert_array_equal(
            count_node_orbits(graph), brute_force_node_orbits(graph)
        )

    def test_tree(self):
        graph = from_networkx(nx.balanced_tree(2, 3))
        np.testing.assert_array_equal(
            count_node_orbits(graph), brute_force_node_orbits(graph)
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_property(self, seed):
        nx_graph = nx.gnp_random_graph(10, 0.35, seed=seed)
        graph = from_networkx(nx_graph)
        np.testing.assert_array_equal(
            count_node_orbits(graph), brute_force_node_orbits(graph)
        )


class TestAggregateIdentities:
    @pytest.mark.parametrize("seed", range(3))
    def test_orbit0_is_degree(self, seed):
        graph = from_networkx(nx.gnp_random_graph(15, 0.3, seed=seed))
        counts = count_node_orbits(graph)
        np.testing.assert_array_equal(counts[:, 0], graph.degrees)

    @pytest.mark.parametrize("seed", range(3))
    def test_triangle_orbit_sums(self, seed):
        nx_graph = nx.gnp_random_graph(15, 0.3, seed=seed)
        graph = from_networkx(nx_graph)
        counts = count_node_orbits(graph)
        np.testing.assert_array_equal(
            counts[:, 3], [nx.triangles(nx_graph, node) for node in range(15)]
        )

    def test_shape(self, figure5_graph):
        assert count_node_orbits(figure5_graph).shape == (5, NODE_ORBIT_COUNT)


class TestGraphletDegreeVectors:
    def test_log_scale(self, clique_graph):
        raw = graphlet_degree_vectors(clique_graph, log_scale=False)
        logged = graphlet_degree_vectors(clique_graph, log_scale=True)
        np.testing.assert_allclose(logged, np.log1p(raw))

    def test_dtype_is_float(self, triangle_graph):
        assert graphlet_degree_vectors(triangle_graph).dtype == np.float64
