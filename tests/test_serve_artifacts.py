"""Artifact store round-trip fidelity and integrity checks."""

import json

import numpy as np
import pytest

from repro.core import HTCAligner, HTCConfig
from repro.core.result import AlignmentResult
from repro.datasets import load_dataset
from repro.serve.artifacts import (
    ARRAYS_FILE,
    MANIFEST_FILE,
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    deserialize_config,
    list_artifacts,
    load_artifact,
    save_artifact,
    serialize_config,
)
from repro.similarity.matching import top_k_indices


def make_result(n_s=30, n_t=25, seed=0):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((n_s, n_t))
    return AlignmentResult(
        alignment_matrix=matrix,
        orbit_matrices={0: matrix * 0.5, 2: matrix * 0.1},
        orbit_importance={0: 0.8, 2: 0.2},
        trusted_pair_counts={0: 7, 2: 3},
        source_embeddings={0: rng.standard_normal((n_s, 4))},
        target_embeddings={0: rng.standard_normal((n_t, 4))},
        stage_times={"multi_orbit_training": 1.25},
        training_losses=[3.5, 2.25, 1.125],
    )


class TestRoundTrip:
    def test_full_fidelity(self, tmp_path):
        result = make_result()
        config = HTCConfig(epochs=7, embedding_dim=16)
        info = save_artifact(result, config, root=tmp_path, name="demo", index_k=6)
        loaded = load_artifact(tmp_path, info.artifact_id)

        np.testing.assert_array_equal(
            loaded.result.alignment_matrix, result.alignment_matrix
        )
        assert sorted(loaded.result.orbit_matrices) == [0, 2]
        for orbit in (0, 2):
            np.testing.assert_array_equal(
                loaded.result.orbit_matrices[orbit], result.orbit_matrices[orbit]
            )
            np.testing.assert_array_equal(
                loaded.result.source_embeddings.get(orbit, np.empty(0)),
                result.source_embeddings.get(orbit, np.empty(0)),
            )
        assert loaded.result.orbit_importance == result.orbit_importance
        assert loaded.result.trusted_pair_counts == result.trusted_pair_counts
        assert loaded.result.stage_times == result.stage_times
        assert loaded.result.training_losses == result.training_losses
        assert loaded.config.epochs == 7
        assert loaded.config.embedding_dim == 16

    def test_query_parity_with_dense(self, tmp_path):
        result = make_result(n_s=40, n_t=33, seed=1)
        info = save_artifact(result, root=tmp_path, index_k=9)
        loaded = load_artifact(tmp_path, info.artifact_id, mode="serve")
        dense = result.alignment_matrix
        rows = np.arange(40)
        np.testing.assert_array_equal(
            loaded.index.match(rows), dense.argmax(axis=1)
        )
        for k in (1, 5, 9):
            np.testing.assert_array_equal(
                loaded.index.top_k(rows, k), top_k_indices(dense, k)
            )
        np.testing.assert_array_equal(
            loaded.index.reverse_match(np.arange(33)), dense.argmax(axis=0)
        )

    @pytest.mark.parametrize("topology_mode", ["orbit", "adjacency"])
    @pytest.mark.parametrize("chunk_size", [None, 16])
    def test_trained_result_round_trip(self, tmp_path, topology_mode, chunk_size):
        """save -> load -> query parity for real pipeline outputs."""
        pair = load_dataset("tiny", random_state=0)
        config = HTCConfig(
            epochs=4,
            embedding_dim=8,
            orbits=(0, 1),
            topology_mode=topology_mode,
            score_chunk_size=chunk_size,
            n_neighbors=5,
        )
        result = HTCAligner(config).align(pair)
        info = save_artifact(
            result, config, root=tmp_path, name=f"tiny-{topology_mode}", index_k=7
        )
        loaded = load_artifact(tmp_path, info.artifact_id)
        dense = result.alignment_matrix
        rows = np.arange(dense.shape[0])
        np.testing.assert_array_equal(
            loaded.result.alignment_matrix, dense
        )
        np.testing.assert_array_equal(loaded.index.match(rows), dense.argmax(axis=1))
        for k in (1, 3, 7):
            np.testing.assert_array_equal(
                loaded.index.top_k(rows, k), top_k_indices(dense, k)
            )
        assert loaded.config.topology_mode == topology_mode

    def test_serve_mode_skips_dense_arrays(self, tmp_path):
        info = save_artifact(make_result(), root=tmp_path, index_k=4)
        loaded = load_artifact(tmp_path, info.artifact_id, mode="serve")
        assert loaded.result is None
        assert loaded.index.indices.shape[1] == 4

    def test_metadata_round_trip(self, tmp_path):
        info = save_artifact(
            make_result(),
            root=tmp_path,
            metadata={"dataset": "tiny", "method": "HTC"},
        )
        loaded = load_artifact(tmp_path, info.artifact_id)
        assert loaded.metadata == {"dataset": "tiny", "method": "HTC"}


class TestContentAddressing:
    def test_same_content_same_id(self, tmp_path):
        result = make_result(seed=2)
        config = HTCConfig(epochs=5)
        first = save_artifact(result, config, root=tmp_path, name="x")
        second = save_artifact(result, config, root=tmp_path, name="x")
        assert first.artifact_id == second.artifact_id
        assert len(list_artifacts(tmp_path)) == 1

    def test_different_content_different_id(self, tmp_path):
        first = save_artifact(make_result(seed=3), root=tmp_path, name="x")
        second = save_artifact(make_result(seed=4), root=tmp_path, name="x")
        assert first.artifact_id != second.artifact_id
        assert len(list_artifacts(tmp_path)) == 2

    def test_reexport_refreshes_metadata(self, tmp_path):
        """Same content, new metadata: the annotations are updated in place."""
        result = make_result(seed=8)
        first = save_artifact(result, root=tmp_path, metadata={"label": "old"})
        second = save_artifact(result, root=tmp_path, metadata={"label": "new"})
        assert second.artifact_id == first.artifact_id
        loaded = load_artifact(tmp_path, first.artifact_id)
        assert loaded.metadata == {"label": "new"}

    def test_id_is_filesystem_safe(self, tmp_path):
        info = save_artifact(
            make_result(), root=tmp_path, name="Weird Name/:With*Stuff"
        )
        assert "/" not in info.artifact_id.replace("", "")
        assert info.path.is_dir()


class TestIntegrityAndSchema:
    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ArtifactNotFoundError):
            load_artifact(tmp_path, "nope-000000000000")

    def test_corrupt_array_detected(self, tmp_path):
        info = save_artifact(make_result(), root=tmp_path)
        arrays = dict(np.load(info.path / ARRAYS_FILE))
        arrays["alignment_matrix"] = arrays["alignment_matrix"] + 1.0
        with open(info.path / ARRAYS_FILE, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(ArtifactIntegrityError, match="integrity"):
            load_artifact(tmp_path, info.artifact_id)
        # skipping verification loads anyway
        load_artifact(tmp_path, info.artifact_id, verify=False)

    def test_newer_major_schema_rejected(self, tmp_path):
        info = save_artifact(make_result(), root=tmp_path)
        manifest = json.loads((info.path / MANIFEST_FILE).read_text())
        manifest["schema_version"] = [99, 0]
        (info.path / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactSchemaError, match="newer"):
            load_artifact(tmp_path, info.artifact_id)

    def test_unknown_manifest_keys_ignored(self, tmp_path):
        info = save_artifact(make_result(), root=tmp_path)
        manifest = json.loads((info.path / MANIFEST_FILE).read_text())
        manifest["a_future_field"] = {"nested": True}
        (info.path / MANIFEST_FILE).write_text(json.dumps(manifest))
        loaded = load_artifact(tmp_path, info.artifact_id)
        assert loaded.result is not None

    def test_missing_index_rebuilt_from_dense(self, tmp_path):
        info = save_artifact(make_result(seed=5), root=tmp_path, index_k=5)
        arrays = dict(np.load(info.path / ARRAYS_FILE))
        dense = arrays["alignment_matrix"]
        for name in list(arrays):
            if name.startswith("index_"):
                del arrays[name]
        with open(info.path / ARRAYS_FILE, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = load_artifact(tmp_path, info.artifact_id, verify=False)
        np.testing.assert_array_equal(
            loaded.index.top_k(np.arange(dense.shape[0]), 5),
            top_k_indices(dense, 5),
        )

    def test_half_written_artifact_skipped_by_list(self, tmp_path):
        save_artifact(make_result(), root=tmp_path)
        (tmp_path / "crashed-partial").mkdir()
        assert len(list_artifacts(tmp_path)) == 1

    def test_resave_repairs_half_written_directory(self, tmp_path):
        """A crash between arrays and manifest must not block re-export."""
        result = make_result(seed=6)
        info = save_artifact(result, root=tmp_path)
        (info.path / MANIFEST_FILE).unlink()  # simulate the crash window
        repaired = save_artifact(result, root=tmp_path)
        assert repaired.artifact_id == info.artifact_id
        assert load_artifact(tmp_path, repaired.artifact_id).result is not None

    def test_unknown_array_suffixes_ignored_by_from_payload(self):
        """Arrays from a newer writer with non-numeric suffixes are skipped."""
        result = make_result(seed=7)
        arrays = result.array_payload()
        arrays["source_embedding_mean"] = np.zeros(3)
        arrays["orbit_matrix_summary"] = np.zeros((2, 2))
        rebuilt = AlignmentResult.from_payload(arrays, result.scalar_payload())
        assert sorted(rebuilt.orbit_matrices) == sorted(result.orbit_matrices)
        assert sorted(rebuilt.source_embeddings) == sorted(
            result.source_embeddings
        )


class TestConfigSerialization:
    def test_round_trip(self):
        config = HTCConfig(
            orbits=(0, 3), epochs=9, diffusion_orders=(1, 2), n_neighbors=4
        )
        payload = serialize_config(config)
        json.dumps(payload)  # must be JSON-safe
        rebuilt = deserialize_config(payload)
        assert rebuilt.orbits == (0, 3)
        assert rebuilt.epochs == 9
        assert rebuilt.diffusion_orders == (1, 2)

    def test_unknown_fields_ignored(self):
        payload = serialize_config(HTCConfig())
        payload["future_knob"] = 42
        rebuilt = deserialize_config(payload)
        assert not hasattr(rebuilt, "future_knob")

    def test_live_cache_degrades_to_memory(self):
        from repro.orbits.cache import resolve_cache

        config = HTCConfig(orbit_cache=resolve_cache("memory"))
        payload = serialize_config(config)
        assert payload["orbit_cache"] == "memory"
        json.dumps(payload)
