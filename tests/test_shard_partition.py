"""Tests for the seeded graph partitioner and cross-graph shard matching."""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.synthetic import tiny_pair
from repro.shard.partition import (
    build_shard_plan,
    expand_with_overlap,
    match_partitions,
    partition_graph,
    shard_signature,
)


@pytest.fixture(scope="module")
def pair():
    return tiny_pair(n_nodes=60, random_state=0)


def _partition_digest(partition) -> str:
    digest = hashlib.sha256()
    digest.update(partition.labels.astype(np.int64).tobytes())
    digest.update(partition.seeds.astype(np.int64).tobytes())
    for shard in partition.shards:
        digest.update(shard.astype(np.int64).tobytes())
    return digest.hexdigest()


class TestPartitionGraph:
    def test_covers_every_node_exactly_once(self, pair):
        partition = partition_graph(pair.source, 4, seed=0)
        combined = np.concatenate(partition.shards)
        assert np.array_equal(np.sort(combined), np.arange(pair.source.n_nodes))

    def test_labels_match_shards(self, pair):
        partition = partition_graph(pair.source, 3, seed=0)
        for shard_id, nodes in enumerate(partition.shards):
            assert np.all(partition.labels[nodes] == shard_id)

    def test_every_shard_contains_its_seed(self, pair):
        partition = partition_graph(pair.source, 4, seed=0)
        for shard_id, seed_node in enumerate(partition.seeds):
            assert partition.labels[seed_node] == shard_id

    def test_single_part_is_whole_graph(self, pair):
        partition = partition_graph(pair.source, 1, seed=0)
        assert partition.n_parts == 1
        assert np.array_equal(partition.shards[0], np.arange(pair.source.n_nodes))

    def test_n_parts_clipped_to_n_nodes(self, pair):
        n = pair.source.n_nodes
        partition = partition_graph(pair.source, n + 50, seed=0)
        assert partition.n_parts == n

    def test_rejects_bad_n_parts(self, pair):
        with pytest.raises(ValueError, match="n_parts"):
            partition_graph(pair.source, 0)

    def test_same_seed_identical_in_process(self, pair):
        a = partition_graph(pair.source, 3, seed=7)
        b = partition_graph(pair.source, 3, seed=7)
        assert _partition_digest(a) == _partition_digest(b)

    def test_same_seed_identical_across_processes(self, pair):
        """The resume machinery needs bit-identical shards in any process."""
        script = (
            "import hashlib, numpy as np\n"
            "from repro.datasets.synthetic import tiny_pair\n"
            "from repro.shard.partition import partition_graph\n"
            "pair = tiny_pair(n_nodes=60, random_state=0)\n"
            "p = partition_graph(pair.source, 3, seed=7)\n"
            "d = hashlib.sha256()\n"
            "d.update(p.labels.astype(np.int64).tobytes())\n"
            "d.update(p.seeds.astype(np.int64).tobytes())\n"
            "for s in p.shards:\n"
            "    d.update(s.astype(np.int64).tobytes())\n"
            "print(d.hexdigest())\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        digests = set()
        for _ in range(2):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1
        assert digests.pop() == _partition_digest(
            partition_graph(pair.source, 3, seed=7)
        )


class TestOverlapExpansion:
    def test_zero_hops_is_sorted_core(self, pair):
        core = np.array([5, 2, 9])
        assert np.array_equal(
            expand_with_overlap(pair.source, core, 0), np.array([2, 5, 9])
        )

    def test_expansion_is_superset_of_core(self, pair):
        partition = partition_graph(pair.source, 3, seed=0)
        core = partition.shards[0]
        expanded = expand_with_overlap(pair.source, core, 1)
        assert np.all(np.isin(core, expanded))

    def test_one_hop_adds_exactly_the_neighbours(self, pair):
        core = np.array([0])
        expanded = expand_with_overlap(pair.source, core, 1)
        expected = np.unique(np.concatenate([[0], pair.source.neighbors(0)]))
        assert np.array_equal(expanded, expected)

    def test_negative_hops_rejected(self, pair):
        with pytest.raises(ValueError, match="hops"):
            expand_with_overlap(pair.source, np.array([0]), -1)


class TestSignatureAndMatching:
    def test_signature_width_and_normalised_histogram(self, pair):
        nodes = np.arange(10)
        sig = shard_signature(pair.source, nodes)
        assert sig.shape == (8 + pair.source.n_attributes + 2,)
        assert sig[:8].sum() == pytest.approx(1.0)

    def test_empty_shard_signature_is_zero(self, pair):
        sig = shard_signature(pair.source, np.array([], dtype=np.int64))
        assert not sig.any()

    def test_matching_is_a_permutation(self, pair):
        sp = partition_graph(pair.source, 3, seed=0)
        tp = partition_graph(pair.target, 3, seed=0)
        matching = match_partitions(pair.source, sp, pair.target, tp)
        assert sorted(m[0] for m in matching) == [0, 1, 2]
        assert sorted(m[1] for m in matching) == [0, 1, 2]

    def test_identical_graphs_match_identically(self, pair):
        partition = partition_graph(pair.source, 3, seed=0)
        matching = match_partitions(
            pair.source, partition, pair.source, partition
        )
        assert matching == [(0, 0), (1, 1), (2, 2)]


class TestShardPlan:
    def test_plan_covers_all_sources(self, pair):
        plan = build_shard_plan(pair, 3, overlap=1, seed=0)
        cores = np.concatenate([p.source_core for p in plan.pairs])
        assert np.array_equal(np.sort(cores), np.arange(pair.source.n_nodes))

    def test_subpair_ground_truth_restriction(self, pair):
        plan = build_shard_plan(pair, 3, overlap=1, seed=0)
        for shard_pair in plan.pairs:
            sub = shard_pair.subpair(pair)
            for local_i, global_i in enumerate(shard_pair.source_nodes):
                expected = pair.ground_truth[global_i]
                local_truth = sub.ground_truth[local_i]
                if expected >= 0 and expected in shard_pair.target_nodes:
                    assert shard_pair.target_nodes[local_truth] == expected
                else:
                    assert local_truth == -1

    def test_summary_is_json_safe(self, pair):
        import json

        plan = build_shard_plan(pair, 2, overlap=1, seed=0)
        json.dumps(plan.summary())

    def test_shard_count_clipped_to_smaller_side(self, pair):
        plan = build_shard_plan(pair, 10_000, overlap=0, seed=0)
        assert plan.n_shards <= min(pair.source.n_nodes, pair.target.n_nodes)
        assert len(plan.pairs) == plan.n_shards
