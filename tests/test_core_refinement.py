"""Tests for trusted-pair based fine-tuning (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import HTCConfig
from repro.core.encoder import build_topology_views, make_encoder
from repro.core.refinement import RefinementOutput, TrustedPairRefiner
from repro.core.training import MultiOrbitTrainer
from repro.datasets.synthetic import tiny_pair


@pytest.fixture(scope="module")
def trained_setup():
    """A trained encoder plus views for a small pair (shared across tests)."""
    pair = tiny_pair(n_nodes=30, random_state=0, noise=0.05)
    config = HTCConfig(
        orbits=[0, 1, 2],
        embedding_dim=12,
        epochs=25,
        n_neighbors=5,
        random_state=0,
    )
    source_views = build_topology_views(pair.source, config)
    target_views = build_topology_views(pair.target, config)
    encoder = make_encoder(pair.source.n_attributes, config)
    MultiOrbitTrainer(config).train(
        encoder, source_views, target_views, pair.source.attributes, pair.target.attributes
    )
    return pair, config, encoder, source_views, target_views


class TestRefineView:
    def test_output_fields(self, trained_setup):
        pair, config, encoder, source_views, target_views = trained_setup
        refiner = TrustedPairRefiner(config)
        output = refiner.refine_view(
            encoder,
            source_views[0],
            target_views[0],
            pair.source.attributes,
            pair.target.attributes,
        )
        assert isinstance(output, RefinementOutput)
        assert output.alignment_matrix.shape == (30, 30)
        assert output.trusted_pairs >= 0
        assert output.source_embedding.shape[0] == 30
        assert output.target_embedding.shape[0] == 30

    def test_refinement_disabled_runs_zero_iterations(self, trained_setup):
        pair, config, encoder, source_views, target_views = trained_setup
        refiner = TrustedPairRefiner(config.updated(use_refinement=False))
        output = refiner.refine_view(
            encoder,
            source_views[0],
            target_views[0],
            pair.source.attributes,
            pair.target.attributes,
        )
        assert output.iterations == 0

    def test_refinement_never_reduces_trusted_pairs(self, trained_setup):
        """The loop keeps the best matrix seen, so the reported count is the max."""
        pair, config, encoder, source_views, target_views = trained_setup
        with_refinement = TrustedPairRefiner(config).refine_view(
            encoder,
            source_views[0],
            target_views[0],
            pair.source.attributes,
            pair.target.attributes,
        )
        without_refinement = TrustedPairRefiner(
            config.updated(use_refinement=False)
        ).refine_view(
            encoder,
            source_views[0],
            target_views[0],
            pair.source.attributes,
            pair.target.attributes,
        )
        assert with_refinement.trusted_pairs >= without_refinement.trusted_pairs

    def test_iteration_cap_respected(self, trained_setup):
        pair, config, encoder, source_views, target_views = trained_setup
        capped = config.updated(max_refinement_iterations=1)
        output = TrustedPairRefiner(capped).refine_view(
            encoder,
            source_views[0],
            target_views[0],
            pair.source.attributes,
            pair.target.attributes,
        )
        assert output.iterations <= 1

    def test_lisi_disabled_uses_pearson(self, trained_setup):
        pair, config, encoder, source_views, target_views = trained_setup
        lisi_output = TrustedPairRefiner(
            config.updated(use_refinement=False)
        ).refine_view(
            encoder,
            source_views[0],
            target_views[0],
            pair.source.attributes,
            pair.target.attributes,
        )
        pearson_output = TrustedPairRefiner(
            config.updated(use_refinement=False, use_lisi=False)
        ).refine_view(
            encoder,
            source_views[0],
            target_views[0],
            pair.source.attributes,
            pair.target.attributes,
        )
        assert not np.allclose(
            lisi_output.alignment_matrix, pearson_output.alignment_matrix
        )
        # Pearson scores are bounded by 1 in absolute value.
        assert np.abs(pearson_output.alignment_matrix).max() <= 1.0 + 1e-9


class TestRefineAll:
    def test_one_output_per_view(self, trained_setup):
        pair, config, encoder, source_views, target_views = trained_setup
        outputs = TrustedPairRefiner(config).refine_all(
            encoder,
            source_views,
            target_views,
            pair.source.attributes,
            pair.target.attributes,
        )
        assert set(outputs) == set(source_views)
