"""Tests for content-hash-keyed orbit caching."""

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.graph.generators import erdos_renyi_graph
from repro.orbits import engine
from repro.orbits.cache import (
    OrbitCache,
    graph_content_hash,
    resolve_cache,
    shared_cache,
)


class TestContentHash:
    def test_structure_determines_hash(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        first = from_edge_list(edges, n_nodes=3)
        second = from_edge_list(edges, n_nodes=3)
        assert graph_content_hash(first) == graph_content_hash(second)

    def test_attributes_do_not_affect_hash(self):
        edges = [(0, 1), (1, 2)]
        plain = from_edge_list(edges, n_nodes=3)
        attributed = from_edge_list(
            edges, n_nodes=3, attributes=np.random.default_rng(0).random((3, 4))
        )
        assert graph_content_hash(plain) == graph_content_hash(attributed)

    def test_different_structure_different_hash(self):
        a = from_edge_list([(0, 1), (1, 2)], n_nodes=3)
        b = from_edge_list([(0, 1), (0, 2)], n_nodes=3)
        c = from_edge_list([(0, 1), (1, 2)], n_nodes=4)  # extra isolated node
        assert graph_content_hash(a) != graph_content_hash(b)
        assert graph_content_hash(a) != graph_content_hash(c)


class TestMemoryCache:
    def test_hit_semantics(self):
        graph = erdos_renyi_graph(25, 4.0, random_state=0)
        cache = OrbitCache()
        first = engine.count_edge_orbits(graph, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 1}
        second = engine.count_edge_orbits(graph, cache=cache)
        assert cache.stats()["hits"] == 1
        assert first.edges == second.edges
        np.testing.assert_array_equal(first.counts, second.counts)

    @pytest.mark.skipif(
        "numpy" not in engine.available_backends(),
        reason="vectorized orbit backend unavailable (numpy < 2.0)",
    )
    def test_cached_result_is_backend_independent(self):
        graph = erdos_renyi_graph(20, 3.0, random_state=1)
        cache = OrbitCache()
        fast = engine.count_edge_orbits(graph, backend="numpy", cache=cache)
        cached = engine.count_edge_orbits(graph, backend="python", cache=cache)
        np.testing.assert_array_equal(fast.counts, cached.counts)
        assert cache.stats()["hits"] == 1  # python backend never ran

    def test_mutating_result_does_not_corrupt_cache(self):
        graph = from_edge_list([(0, 1), (1, 2), (0, 2)], n_nodes=3)
        cache = OrbitCache()
        first = engine.count_edge_orbits(graph, cache=cache)
        first.counts[:] = -1
        second = engine.count_edge_orbits(graph, cache=cache)
        assert (second.counts >= 0).all()

    def test_node_and_edge_records_are_separate(self):
        graph = from_edge_list([(0, 1), (1, 2)], n_nodes=3)
        cache = OrbitCache()
        engine.count_edge_orbits(graph, cache=cache)
        gdv = engine.count_node_orbits(graph, cache=cache)
        assert cache.stats()["entries"] == 2
        np.testing.assert_array_equal(
            gdv, engine.count_node_orbits(graph, backend="python")
        )

    def test_lru_eviction(self):
        cache = OrbitCache(max_entries=2)
        for seed in range(3):
            graph = erdos_renyi_graph(12, 2.0, random_state=seed)
            engine.count_edge_orbits(graph, cache=cache)
        assert len(cache) == 2

    def test_byte_budget_eviction(self):
        # An edge record is m*(13+2) int64 = 120*m bytes; a 50-edge path is
        # 6000 bytes, so a 7000-byte budget holds exactly one record.
        cache = OrbitCache(max_bytes=7000)
        for m in (50, 51, 52):
            path = from_edge_list([(i, i + 1) for i in range(m)], n_nodes=m + 1)
            engine.count_edge_orbits(path, cache=cache)
        assert len(cache) == 1
        # The most recent record survives and still hits.
        engine.count_edge_orbits(path, cache=cache)
        assert cache.stats()["hits"] == 1

    def test_clear(self):
        cache = OrbitCache()
        graph = from_edge_list([(0, 1)], n_nodes=2)
        engine.count_edge_orbits(graph, cache=cache)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            OrbitCache(max_entries=0)


class TestDiskCache:
    def test_roundtrip_across_instances(self, tmp_path):
        graph = erdos_renyi_graph(25, 4.0, random_state=3)
        writer = OrbitCache(directory=tmp_path)
        original = engine.count_edge_orbits(graph, cache=writer)
        gdv = engine.count_node_orbits(graph, cache=writer)
        assert list(tmp_path.glob("*.npz"))

        # A fresh instance (fresh process stand-in) must hit via disk.
        reader = OrbitCache(directory=tmp_path)
        reloaded = engine.count_edge_orbits(graph, cache=reader)
        assert reader.stats()["hits"] == 1
        assert reloaded.edges == original.edges
        np.testing.assert_array_equal(reloaded.counts, original.counts)
        np.testing.assert_array_equal(
            engine.count_node_orbits(graph, cache=reader), gdv
        )

    def test_corrupt_file_is_ignored(self, tmp_path):
        graph = from_edge_list([(0, 1), (1, 2)], n_nodes=3)
        cache = OrbitCache(directory=tmp_path)
        engine.count_edge_orbits(graph, cache=cache)
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(b"not an npz")
        fresh = OrbitCache(directory=tmp_path)
        counts = engine.count_edge_orbits(graph, cache=fresh)  # recomputes
        assert counts.n_edges == 2
        assert fresh.stats()["misses"] == 1

    def test_truncated_file_is_ignored(self, tmp_path):
        graph = from_edge_list([(0, 1), (1, 2)], n_nodes=3)
        cache = OrbitCache(directory=tmp_path)
        engine.count_edge_orbits(graph, cache=cache)
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(path.read_bytes()[:20])  # valid prefix, bad zip
        fresh = OrbitCache(directory=tmp_path)
        counts = engine.count_edge_orbits(graph, cache=fresh)
        assert counts.n_edges == 2

    def test_foreign_record_is_ignored(self, tmp_path):
        graph = from_edge_list([(0, 1), (1, 2)], n_nodes=3)
        cache = OrbitCache(directory=tmp_path)
        engine.count_edge_orbits(graph, cache=cache)
        for path in tmp_path.glob("*.edge.npz"):
            np.savez(path, wrong_key=np.arange(3))  # loadable, missing keys
        fresh = OrbitCache(directory=tmp_path)
        counts = engine.count_edge_orbits(graph, cache=fresh)
        assert counts.n_edges == 2


class TestResolveCache:
    def test_off_specs(self):
        for spec in (None, False, "off", "none", ""):
            assert resolve_cache(spec) is None

    def test_memory_specs(self):
        assert resolve_cache("memory") is shared_cache()
        assert resolve_cache(True) is shared_cache()

    def test_instance_passthrough(self):
        cache = OrbitCache()
        assert resolve_cache(cache) is cache

    def test_directory_spec_is_memoised(self, tmp_path):
        first = resolve_cache(str(tmp_path))
        second = resolve_cache(str(tmp_path))
        assert first is second
        assert first.directory == tmp_path.resolve()

    def test_invalid_spec(self):
        with pytest.raises(TypeError):
            resolve_cache(42)


class TestConfigIntegration:
    def test_config_accepts_orbit_fields(self):
        from repro.core.config import HTCConfig

        config = HTCConfig(orbit_backend="python", orbit_cache="off")
        assert config.orbit_backend == "python"
        with pytest.raises(ValueError, match="orbit_backend"):
            HTCConfig(orbit_backend="fortran")
        with pytest.raises(ValueError, match="cache spec"):
            HTCConfig(orbit_cache=42)

    def test_aligner_skips_counting_on_cache_hit(self):
        from repro.core import HTCAligner, HTCConfig
        from repro.datasets.synthetic import tiny_pair

        pair = tiny_pair(n_nodes=25, random_state=0, noise=0.05)
        cache = OrbitCache()
        config = HTCConfig(
            epochs=2, embedding_dim=8, orbits=[0, 1], n_neighbors=3,
            orbit_cache=cache, random_state=0,
        )
        HTCAligner(config).align(pair)
        assert cache.stats() == {"hits": 0, "misses": 2, "entries": 2}
        result = HTCAligner(config).align(pair)
        assert cache.stats()["hits"] == 2
        assert result.stage_times["orbit_counting"] >= 0.0
