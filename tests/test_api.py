"""The repro.api surface: models, dispatch, HTTP servers, catalog, versions.

The stdlib HTTP server is always available, so the end-to-end tests below
(structured 4xx bodies over a real socket, bit-parity of HTTP responses with
direct ``AlignmentService`` calls) run everywhere; the FastAPI-specific tests
skip themselves when the optional dependency is absent.
"""

import http.client
import importlib.util
import json
import sys
import threading

import numpy as np
import pytest

from repro.api.core import ApiState, dispatch
from repro.api.http import BackgroundServer
from repro.api.models import (
    API_SCHEMA_VERSION,
    QUERY_OPS,
    ApiValidationError,
    make_query_request,
    make_query_response,
    parse_query_request,
    response_payload,
)
from repro.serve import AlignmentService, export_result
from repro.serve.artifacts import SCHEMA_VERSION, ArtifactSchemaError
from repro.serve.catalog import FILTER_FIELDS, ArtifactCatalog, record_from_manifest
from repro.serve.service import check_runtime_schema


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """One exported artifact in a store (module-scoped: exporting is slow)."""
    root = tmp_path_factory.mktemp("api_store")
    matrix = np.random.default_rng(7).standard_normal((20, 15))
    info = export_result(
        matrix,
        root=root,
        name="api-test",
        index_k=6,
        metadata={"dataset": "tiny", "method": "Degree"},
    )
    return root, info.artifact_id, matrix


# ----------------------------------------------------------------------
# the one wire validator
# ----------------------------------------------------------------------
class TestParseQueryRequest:
    def test_valid_match(self):
        request = parse_query_request({"artifact_id": "a", "op": "match", "nodes": [0, 1]})
        assert request.op == "match"
        assert request.k is None
        np.testing.assert_array_equal(request.nodes, [0, 1])
        assert request.nodes.dtype == np.intp

    def test_valid_top_k(self):
        request = parse_query_request(
            {"artifact_id": "a", "op": "top_k", "nodes": [3], "k": 5}
        )
        assert request.k == 5

    def test_empty_nodes_allowed(self):
        request = parse_query_request({"artifact_id": "a", "op": "match", "nodes": []})
        assert request.nodes.size == 0
        assert request.nodes.dtype == np.intp

    def test_force_op_fills_missing_op(self):
        request = parse_query_request(
            {"artifact_id": "a", "nodes": [1]}, force_op="match"
        )
        assert request.op == "match"

    def test_force_op_conflict_rejected(self):
        with pytest.raises(ApiValidationError) as excinfo:
            parse_query_request(
                {"artifact_id": "a", "op": "top_k", "nodes": [1], "k": 2},
                force_op="match",
            )
        assert any(e["loc"] == ["op"] for e in excinfo.value.detail)

    @pytest.mark.parametrize(
        "payload, loc",
        [
            ({"op": "match", "nodes": [0]}, ["artifact_id"]),
            ({"artifact_id": "", "op": "match", "nodes": [0]}, ["artifact_id"]),
            ({"artifact_id": "a", "op": "argmax", "nodes": [0]}, ["op"]),
            ({"artifact_id": "a", "op": "match"}, ["nodes"]),
            ({"artifact_id": "a", "op": "match", "nodes": 3}, ["nodes"]),
            ({"artifact_id": "a", "op": "match", "nodes": [0.5]}, ["nodes"]),
            ({"artifact_id": "a", "op": "match", "nodes": ["x"]}, ["nodes"]),
            ({"artifact_id": "a", "op": "match", "nodes": [[0], [1]]}, ["nodes"]),
            ({"artifact_id": "a", "op": "top_k", "nodes": [0]}, ["k"]),
            ({"artifact_id": "a", "op": "top_k", "nodes": [0], "k": 0}, ["k"]),
            ({"artifact_id": "a", "op": "top_k", "nodes": [0], "k": True}, ["k"]),
            ({"artifact_id": "a", "op": "top_k", "nodes": [0], "k": "3"}, ["k"]),
            ({"artifact_id": "a", "op": "match", "nodes": [0], "k": 3}, ["k"]),
            ({"artifact_id": "a", "op": "match", "nodes": [0], "extra": 1}, ["extra"]),
        ],
    )
    def test_rejections_carry_locs(self, payload, loc):
        with pytest.raises(ApiValidationError) as excinfo:
            parse_query_request(payload)
        assert loc in [e["loc"] for e in excinfo.value.detail]

    def test_non_mapping_body(self):
        with pytest.raises(ApiValidationError):
            parse_query_request([1, 2, 3])

    def test_error_body_is_versioned(self):
        try:
            parse_query_request({"artifact_id": "a", "op": "match", "nodes": [0.5]})
        except ApiValidationError as error:
            body = error.body()
        assert body["schema_version"] == API_SCHEMA_VERSION
        assert body["error"]["code"] == "validation_error"
        assert body["error"]["detail"]

    def test_dataclass_fallback_mirrors_schema(self):
        """Re-execute models.py with pydantic blocked: same behaviour."""
        import repro.api.models as canonical

        spec = importlib.util.spec_from_file_location(
            "repro_api_models_nopydantic", canonical.__file__
        )
        module = importlib.util.module_from_spec(spec)
        saved = sys.modules.get("pydantic")
        sys.modules["pydantic"] = None  # forces ImportError in the probe
        sys.modules[spec.name] = module  # @dataclass resolves the module
        try:
            spec.loader.exec_module(module)
        finally:
            del sys.modules[spec.name]
            if saved is not None:
                sys.modules["pydantic"] = saved
            else:
                del sys.modules["pydantic"]
        assert module.USING_PYDANTIC is False
        request = module.parse_query_request(
            {"artifact_id": "a", "op": "top_k", "nodes": [0, 1], "k": 2}
        )
        assert (request.artifact_id, request.op, request.k) == ("a", "top_k", 2)
        response = module.make_query_response(request, np.array([[1, 2], [3, 4]]), "float64")
        payload = module.response_payload(response)
        assert payload["results"] == [[1, 2], [3, 4]]
        assert payload["schema_version"] == canonical.API_SCHEMA_VERSION
        with pytest.raises(module.ApiValidationError):
            module.parse_query_request(
                {"artifact_id": "a", "op": "match", "nodes": [0.5]}
            )


# ----------------------------------------------------------------------
# the shared service.query entry point
# ----------------------------------------------------------------------
class TestServiceQuery:
    def test_wrappers_and_query_agree(self, store):
        root, artifact_id, matrix = store
        service = AlignmentService()
        service.load(root, artifact_id)
        nodes = np.arange(matrix.shape[0])
        via_query = service.query(
            make_query_request(artifact_id, "match", nodes)
        ).results
        np.testing.assert_array_equal(via_query, service.match(artifact_id, nodes))
        np.testing.assert_array_equal(via_query, matrix.argmax(axis=1))
        top = service.query(make_query_request(artifact_id, "top_k", [0, 1], 3))
        np.testing.assert_array_equal(top.results, service.top_k(artifact_id, [0, 1], 3))
        assert top.k == 3
        assert top.score_dtype == "float64"

    def test_query_accepts_wire_mapping(self, store):
        root, artifact_id, _ = store
        service = AlignmentService()
        service.load(root, artifact_id)
        response = service.query(
            {"artifact_id": artifact_id, "op": "reverse_match", "nodes": [0, 2]}
        )
        np.testing.assert_array_equal(
            response.results, service.reverse_match(artifact_id, [0, 2])
        )

    def test_legacy_exception_types_preserved(self, store):
        root, artifact_id, _ = store
        service = AlignmentService()
        service.load(root, artifact_id)
        with pytest.raises(KeyError):
            service.query(make_query_request("nope", "match", [0]))
        with pytest.raises(IndexError):
            service.query(make_query_request(artifact_id, "match", [10_000]))
        with pytest.raises(ValueError):
            service.query(make_query_request(artifact_id, "top_k", [0]))  # no k

    def test_describe_and_stats_carry_versions(self, store):
        root, artifact_id, _ = store
        service = AlignmentService()
        service.load(root, artifact_id)
        description = service.describe(artifact_id)
        assert description["schema_version"] == API_SCHEMA_VERSION
        assert description["engine_version"]
        assert description["score_dtype"] == "float64"
        assert description["artifact_schema_version"] == list(SCHEMA_VERSION)
        stats = service.stats()
        assert stats["schema_version"] == API_SCHEMA_VERSION
        assert stats["engine_version"]


class TestRuntimeSchemaGuard:
    def _manifest(self, version):
        return {"artifact_id": "x", "schema_version": version}

    def test_current_schema_accepted(self):
        check_runtime_schema(self._manifest(list(SCHEMA_VERSION)))

    def test_newer_minor_accepted(self):
        check_runtime_schema(self._manifest([SCHEMA_VERSION[0], SCHEMA_VERSION[1] + 5]))

    def test_future_major_refused_naming_both_versions(self):
        future = [SCHEMA_VERSION[0] + 1, 0]
        with pytest.raises(ArtifactSchemaError) as excinfo:
            check_runtime_schema(self._manifest(future))
        message = str(excinfo.value)
        assert str(future) in message
        assert str(list(SCHEMA_VERSION)) in message

    def test_malformed_version_refused(self):
        with pytest.raises(ArtifactSchemaError):
            check_runtime_schema(self._manifest("2"))
        with pytest.raises(ArtifactSchemaError):
            check_runtime_schema({"artifact_id": "x"})


# ----------------------------------------------------------------------
# transport-agnostic dispatch (no sockets)
# ----------------------------------------------------------------------
class TestDispatch:
    def test_health(self, store):
        root, artifact_id, _ = store
        status, payload = dispatch(ApiState(root=root), "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema_version"] == API_SCHEMA_VERSION

    def test_artifacts_listing_and_filters(self, store):
        root, artifact_id, _ = store
        state = ApiState(root=root)
        status, payload = dispatch(state, "GET", "/artifacts")
        assert status == 200
        assert payload["source"] == "catalog"
        assert artifact_id in [a["artifact_id"] for a in payload["artifacts"]]
        status, payload = dispatch(
            state, "GET", "/artifacts", params={"dataset": "tiny", "limit": "1"}
        )
        assert status == 200 and payload["n_artifacts"] == 1
        status, payload = dispatch(
            state, "GET", "/artifacts", params={"dataset": "other"}
        )
        assert status == 200 and payload["n_artifacts"] == 0
        status, payload = dispatch(
            state, "GET", "/artifacts", params={"bogus": "1"}
        )
        assert status == 422
        assert payload["error"]["detail"] == [
            {
                "loc": ["bogus"],
                "msg": "unknown filter; expected any of "
                f"{list(FILTER_FIELDS)}",
            }
        ]
        status, payload = dispatch(
            state, "GET", "/artifacts", params={"limit": "many"}
        )
        assert status == 422
        assert [e["loc"] for e in payload["error"]["detail"]] == [["limit"]]
        status, payload = dispatch(
            state, "GET", "/artifacts", params={"offset": "-3"}
        )
        assert status == 422
        assert [e["loc"] for e in payload["error"]["detail"]] == [["offset"]]

    def test_artifacts_pagination(self, store):
        root, artifact_id, _ = store
        state = ApiState(root=root)
        status, payload = dispatch(state, "GET", "/artifacts")
        assert status == 200
        assert payload["total"] == payload["n_artifacts"] == len(payload["artifacts"])
        assert payload["limit"] is None and payload["offset"] is None
        # Paging past the single stored artifact: total is unaffected.
        status, payload = dispatch(
            state, "GET", "/artifacts", params={"limit": "5", "offset": "1"}
        )
        assert status == 200
        assert payload["n_artifacts"] == 0 and payload["total"] == 1
        assert payload["limit"] == 5 and payload["offset"] == 1

    def test_artifact_get(self, store):
        root, artifact_id, _ = store
        state = ApiState(root=root)
        status, payload = dispatch(state, "GET", f"/artifacts/{artifact_id}")
        assert status == 200
        assert payload["dataset"] == "tiny"
        status, payload = dispatch(state, "GET", "/artifacts/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_query_routes_auto_load(self, store):
        root, artifact_id, matrix = store
        state = ApiState(root=root)  # nothing hosted yet: auto-load on demand
        status, payload = dispatch(
            state, "POST", "/match", body={"artifact_id": artifact_id, "nodes": [0, 1]}
        )
        assert status == 200
        assert payload["results"] == matrix.argmax(axis=1)[:2].tolist()

    def test_reverse_route_switches_on_k(self, store):
        root, artifact_id, _ = store
        state = ApiState(root=root)
        status, payload = dispatch(
            state, "POST", "/reverse", body={"artifact_id": artifact_id, "nodes": [0]}
        )
        assert status == 200 and payload["op"] == "reverse_match"
        status, payload = dispatch(
            state,
            "POST",
            "/reverse",
            body={"artifact_id": artifact_id, "nodes": [0], "k": 2},
        )
        assert status == 200 and payload["op"] == "reverse_top_k"

    def test_structured_errors(self, store):
        root, artifact_id, _ = store
        state = ApiState(root=root)
        cases = [
            ({"artifact_id": artifact_id, "nodes": [10_000]}, 400, "bad_request"),
            ({"artifact_id": artifact_id, "nodes": [0.5]}, 422, "validation_error"),
            ({"artifact_id": "nope", "nodes": [0]}, 404, "not_found"),
        ]
        for body, expected_status, expected_code in cases:
            status, payload = dispatch(state, "POST", "/match", body=body)
            assert status == expected_status
            assert payload["error"]["code"] == expected_code
            assert payload["schema_version"] == API_SCHEMA_VERSION

    def test_unknown_route(self, store):
        root, _, _ = store
        status, payload = dispatch(ApiState(root=root), "GET", "/bogus")
        assert status == 404
        status, payload = dispatch(ApiState(root=root), "POST", "/bogus", body={})
        assert status == 404

    def test_stateless_service_without_root(self):
        state = ApiState()  # no store at all
        status, payload = dispatch(state, "GET", "/artifacts")
        assert status == 200 and payload["source"] == "hosted"
        status, payload = dispatch(
            state, "GET", "/artifacts", params={"dataset": "tiny"}
        )
        assert status == 400  # filters need a store


# ----------------------------------------------------------------------
# GET /backends: registry introspection over the API
# ----------------------------------------------------------------------
class TestBackendsEndpoint:
    def test_lists_all_kinds_with_auto_choice(self):
        status, payload = dispatch(ApiState(), "GET", "/backends")
        assert status == 200
        assert payload["schema_version"] == API_SCHEMA_VERSION
        kinds = payload["kinds"]
        assert set(kinds) >= {"orbit", "compute", "executor"}
        for kind, entry in kinds.items():
            names = [b["name"] for b in entry["backends"]]
            assert names == sorted(names)
            for backend in entry["backends"]:
                assert set(backend) == {"name", "available", "priority"}
                assert isinstance(backend["available"], bool)
                assert isinstance(backend["priority"], int)
            available = [b["name"] for b in entry["backends"] if b["available"]]
            if available:
                assert entry["auto"] in available
        # The concrete expectations of this environment: numpy orbits and
        # compute are available; auto never picks the opt-in sparse backend.
        orbit_names = {b["name"]: b for b in kinds["orbit"]["backends"]}
        assert {"python", "numpy", "numba"} <= set(orbit_names)
        assert kinds["compute"]["auto"] == "numpy"

    def test_reports_absent_accelerator_unavailable_without_import(self):
        import importlib.util
        import sys

        status, payload = dispatch(ApiState(), "GET", "/backends")
        assert status == 200
        orbit = {
            b["name"]: b for b in payload["kinds"]["orbit"]["backends"]
        }
        numba_present = importlib.util.find_spec("numba") is not None
        assert orbit["numba"]["available"] is numba_present
        if not numba_present:
            # Probing availability must not have tried to import numba.
            assert "numba" not in sys.modules
            assert payload["kinds"]["orbit"]["auto"] == "numpy"

    def test_counted_in_request_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        state = ApiState(metrics=MetricsRegistry("api-test"))
        dispatch(state, "GET", "/backends")
        counter = state.metrics.counter(
            "api_requests_total", endpoint="/backends", status="2xx"
        )
        assert counter.value == 1

    def test_transport_parity_on_stdlib_socket(self):
        state = ApiState()
        direct_status, direct_payload = dispatch(state, "GET", "/backends")
        with BackgroundServer(state) as server:
            status, payload = _http(server, "GET", "/backends")
        assert (status, payload) == (
            direct_status,
            json.loads(json.dumps(direct_payload)),
        )


# ----------------------------------------------------------------------
# real sockets: the always-available stdlib server
# ----------------------------------------------------------------------
def _http(server, method, path, body=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if body is not None else {}
        connection.request(method, path, payload, headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestHTTPServer:
    def test_bit_parity_with_direct_service_all_ops(self, store):
        root, artifact_id, _ = store
        state = ApiState(root=root)
        direct = AlignmentService()
        direct.load(root, artifact_id)
        nodes = [0, 1, 2, 7]
        reverse_nodes = [0, 3, 9]
        with BackgroundServer(state) as server:
            for op, ids, k in [
                ("match", nodes, None),
                ("top_k", nodes, 4),
                ("reverse_match", reverse_nodes, None),
                ("reverse_top_k", reverse_nodes, 3),
            ]:
                body = {"artifact_id": artifact_id, "op": op, "nodes": ids}
                if k is not None:
                    body["k"] = k
                status, payload = _http(server, "POST", "/query", body)
                assert status == 200, payload
                expected = (
                    getattr(direct, op)(artifact_id, ids)
                    if k is None
                    else getattr(direct, op)(artifact_id, ids, k)
                )
                assert payload["results"] == np.asarray(expected).tolist()
                assert payload["op"] == op
                assert payload["schema_version"] == API_SCHEMA_VERSION

    def test_structured_errors_over_http(self, store):
        root, artifact_id, _ = store
        with BackgroundServer(ApiState(root=root)) as server:
            status, payload = _http(
                server, "POST", "/match",
                {"artifact_id": artifact_id, "nodes": [10_000]},
            )
            assert (status, payload["error"]["code"]) == (400, "bad_request")
            status, payload = _http(
                server, "POST", "/match",
                {"artifact_id": artifact_id, "nodes": [0.25]},
            )
            assert (status, payload["error"]["code"]) == (422, "validation_error")
            status, payload = _http(
                server, "POST", "/match", {"artifact_id": "nope", "nodes": [0]}
            )
            assert (status, payload["error"]["code"]) == (404, "not_found")

    def test_malformed_json_is_structured_400(self, store):
        root, _, _ = store
        with BackgroundServer(ApiState(root=root)) as server:
            connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
            try:
                connection.request(
                    "POST", "/match", "{not json", {"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
            finally:
                connection.close()
            assert response.status == 400
            assert payload["error"]["code"] == "validation_error"

    def test_get_endpoints_over_http(self, store):
        root, artifact_id, _ = store
        with BackgroundServer(ApiState(root=root)) as server:
            status, payload = _http(server, "GET", "/health")
            assert status == 200 and payload["status"] == "ok"
            status, payload = _http(server, "GET", "/artifacts?dataset=tiny")
            assert status == 200 and payload["n_artifacts"] == 1
            status, payload = _http(server, "GET", f"/artifacts/{artifact_id}")
            assert status == 200 and payload["method"] == "Degree"
            status, payload = _http(server, "GET", "/stats")
            assert status == 200 and "queries" in payload
            status, payload = _http(server, "GET", "/backends")
            assert status == 200
            assert set(payload["kinds"]) >= {"orbit", "compute", "executor"}
            status, payload = _http(server, "GET", "/artifacts?limit=1&offset=0")
            assert status == 200 and payload["total"] >= 1

    def test_concurrent_http_clients(self, store):
        root, artifact_id, matrix = store
        expected = matrix.argmax(axis=1)[:3].tolist()
        failures = []
        with BackgroundServer(ApiState(root=root)) as server:
            def client(_):
                for _ in range(5):
                    status, payload = _http(
                        server, "POST", "/match",
                        {"artifact_id": artifact_id, "nodes": [0, 1, 2]},
                    )
                    if status != 200 or payload["results"] != expected:
                        failures.append(payload)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures


# ----------------------------------------------------------------------
# the SQLite catalog
# ----------------------------------------------------------------------
def _make_manifest(artifact_id, dataset="tiny", method="HTC", created=1.0):
    return {
        "artifact_id": artifact_id,
        "name": artifact_id.rsplit("-", 1)[0],
        "kind": "alignment",
        "content_hash": f"hash-{artifact_id}",
        "dtype": "float64",
        "schema_version": [1, 1],
        "created_unix": created,
        "index": {"shape": [10, 8], "k": 4},
        "metadata": {"dataset": dataset, "method": method},
    }


class TestCatalog:
    def test_register_and_lookup(self, tmp_path):
        catalog = ArtifactCatalog.for_store(tmp_path)
        catalog.register_manifest(_make_manifest("a-1"), tmp_path / "a-1")
        record = catalog.get("a-1")
        assert record["dataset"] == "tiny"
        assert record["n_source"] == 10
        assert record["index_k"] == 4
        assert record["metadata"]["method"] == "HTC"
        assert catalog.get("missing") is None

    def test_register_is_idempotent(self, tmp_path):
        catalog = ArtifactCatalog.for_store(tmp_path)
        catalog.register_manifest(_make_manifest("a-1"))
        catalog.register_manifest(_make_manifest("a-1"))
        assert catalog.count() == 1

    def test_find_filters_and_order(self, tmp_path):
        catalog = ArtifactCatalog.for_store(tmp_path)
        catalog.register_manifest(_make_manifest("a-1", method="HTC", created=1.0))
        catalog.register_manifest(_make_manifest("b-1", method="IsoRank", created=2.0))
        catalog.register_manifest(_make_manifest("c-1", method="HTC", created=3.0))
        assert [r["artifact_id"] for r in catalog.find()] == ["c-1", "b-1", "a-1"]
        assert [r["artifact_id"] for r in catalog.find(method="HTC")] == ["c-1", "a-1"]
        assert catalog.latest(method="HTC")["artifact_id"] == "c-1"
        assert [r["artifact_id"] for r in catalog.find(since=2.5)] == ["c-1"]
        assert len(catalog.find(limit=2)) == 2
        with pytest.raises(ValueError):
            catalog.find(bogus="x")

    def test_concurrent_register_and_lookup(self, tmp_path):
        catalog = ArtifactCatalog.for_store(tmp_path)
        errors = []

        def writer(index):
            try:
                for j in range(10):
                    catalog.register_manifest(
                        _make_manifest(f"w{index}-{j}", created=float(j))
                    )
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        def reader():
            try:
                for _ in range(20):
                    catalog.count()
                    catalog.find(limit=5)
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert catalog.count() == 40

    def test_sync_backfills_and_prunes(self, store, tmp_path):
        root, artifact_id, _ = store
        # Fresh catalog in a copied location: simulate a pre-catalog store.
        catalog = ArtifactCatalog(tmp_path / "standalone.sqlite")
        registered, seen = catalog.sync(root)
        assert (registered, seen) == (1, 1)
        assert catalog.get(artifact_id) is not None
        # Second sync is a no-op; a vanished directory is pruned.
        assert catalog.sync(root) == (0, 1)
        catalog.register_manifest(_make_manifest("ghost-1"))
        catalog.sync(root)
        assert catalog.get("ghost-1") is None

    def test_write_time_registration(self, tmp_path):
        matrix = np.random.default_rng(3).standard_normal((8, 6))
        info = export_result(matrix, root=tmp_path, name="auto", index_k=3)
        record = ArtifactCatalog.for_store(tmp_path).get(info.artifact_id)
        assert record is not None
        assert record["n_source"] == 8

    def test_record_from_manifest_hashes_config(self):
        manifest = _make_manifest("a-1")
        manifest["config"] = {"epochs": 4}
        record = record_from_manifest(manifest)
        assert record["config_hash"]
        assert record["schema_version"] == "1.1"


# ----------------------------------------------------------------------
# optional FastAPI transport (skips when not installed)
# ----------------------------------------------------------------------
class TestAsgi:
    def test_create_app_without_fastapi_raises(self, monkeypatch):
        import repro.api.asgi as asgi

        monkeypatch.setattr(asgi, "fastapi_available", lambda: False)
        with pytest.raises(RuntimeError, match="stdlib"):
            asgi.create_app()

    def test_fastapi_parity_with_stdlib(self, store):
        pytest.importorskip("fastapi")
        testclient = pytest.importorskip("fastapi.testclient")
        from repro.api.asgi import create_app

        root, artifact_id, _ = store
        state = ApiState(root=root)
        client = testclient.TestClient(create_app(state))
        body = {"artifact_id": artifact_id, "nodes": [0, 1, 2], "k": 3}
        asgi_response = client.post("/top_k", json=body)
        status, stdlib_payload = dispatch(
            ApiState(root=root), "POST", "/top_k", body=body
        )
        assert asgi_response.status_code == status == 200
        assert asgi_response.json() == stdlib_payload
        # GET parity: /backends and the paginated /artifacts listing must be
        # byte-identical across transports (both render the same dispatch
        # payload).
        for path, params in [
            ("/backends", None),
            ("/artifacts", {"limit": "1", "offset": "0"}),
        ]:
            asgi_response = client.get(path, params=params)
            status, stdlib_payload = dispatch(
                ApiState(root=root), "GET", path, params=params
            )
            assert asgi_response.status_code == status == 200
            assert asgi_response.json() == json.loads(json.dumps(stdlib_payload))
        assert client.get("/health").json()["status"] == "ok"
        assert client.post(
            "/match", json={"artifact_id": "nope", "nodes": [0]}
        ).status_code == 404


class TestPackageSurface:
    def test_lazy_exports_resolve(self):
        import repro.api

        assert callable(repro.api.dispatch)
        assert callable(repro.api.make_server)
        assert repro.api.ApiState is ApiState
        with pytest.raises(AttributeError):
            repro.api.not_a_thing

    def test_ops_match_service_surface(self):
        for op in QUERY_OPS:
            assert callable(getattr(AlignmentService, op))

    def test_response_payload_roundtrips_json(self, store):
        root, artifact_id, _ = store
        service = AlignmentService()
        service.load(root, artifact_id)
        response = service.query(make_query_request(artifact_id, "top_k", [0, 1], 2))
        payload = response_payload(response)
        assert json.loads(json.dumps(payload)) == payload

    def test_make_query_response_counts_nodes(self):
        request = make_query_request("a", "match", np.array([1, 2, 3]))
        response = make_query_response(request, np.array([4, 5, 6]), "float32")
        assert response.n_nodes == 3
        assert response.score_dtype == "float32"
        assert response.k is None
