"""Tests for the extensions beyond the paper: GDV attribute augmentation and
report export helpers."""

import json

import numpy as np

from repro.core import HTCAligner, HTCConfig
from repro.core.variants import EXTRA_ABLATION_VARIANTS, make_variant
from repro.datasets.synthetic import tiny_pair
from repro.eval.metrics import precision_at_q
from repro.eval.reporting import rows_to_csv, save_rows
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.perturbation import permute_graph


class TestGDVAugmentation:
    def test_variant_registered(self):
        aligner = make_variant("HTC-GDV")
        assert aligner.config.augment_with_gdv is True
        assert "HTC-GDV" in EXTRA_ABLATION_VARIANTS

    def test_alignment_runs_and_has_right_shape(self):
        pair = tiny_pair(n_nodes=25, random_state=0)
        config = HTCConfig(
            epochs=5,
            embedding_dim=8,
            orbits=[0, 1],
            n_neighbors=5,
            augment_with_gdv=True,
            random_state=0,
        )
        result = HTCAligner(config).align(pair)
        assert result.alignment_matrix.shape == (25, 25)

    def test_augmentation_preserves_proposition1(self):
        """GDVs are isomorphism invariant, so augmented attributes still map
        anchor nodes of a permuted copy to identical embeddings."""
        source = powerlaw_cluster_graph(20, 3, n_attributes=4, random_state=0)
        target, mapping = permute_graph(source, random_state=1)
        from repro.core.encoder import build_topology_views, make_encoder
        from repro.core.aligner import _augment_with_gdv

        config = HTCConfig(orbits=[0, 1], embedding_dim=8, random_state=0)
        source_attrs = _augment_with_gdv(source, config)
        target_attrs = _augment_with_gdv(target, config)
        np.testing.assert_allclose(source_attrs, target_attrs[mapping])

        encoder = make_encoder(source_attrs.shape[1], config)
        source_views = build_topology_views(source, config)
        target_views = build_topology_views(target, config)
        source_embedding = encoder(source_views[0], source_attrs).numpy()
        target_embedding = encoder(target_views[0], target_attrs).numpy()
        np.testing.assert_allclose(source_embedding, target_embedding[mapping], atol=1e-8)

    def test_augmentation_not_worse_on_clean_pair(self):
        pair = tiny_pair(n_nodes=30, random_state=1, noise=0.0)
        base = HTCConfig(
            epochs=10, embedding_dim=8, orbits=[0, 1, 2], n_neighbors=5, random_state=0
        )
        plain = HTCAligner(base).align(pair).alignment_matrix
        augmented = HTCAligner(base.updated(augment_with_gdv=True)).align(
            pair
        ).alignment_matrix
        p_plain = precision_at_q(plain, pair.ground_truth, 1)
        p_augmented = precision_at_q(augmented, pair.ground_truth, 1)
        assert p_augmented >= p_plain - 0.15


class TestReportExport:
    def test_csv_round_trip_structure(self):
        rows = [{"method": "HTC", "p@1": 0.88}, {"method": "GAlign", "p@1": 0.78}]
        csv_text = rows_to_csv(rows)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "method,p@1"
        assert lines[1].startswith("HTC,")
        assert len(lines) == 3

    def test_csv_escaping(self):
        rows = [{"note": 'has, comma and "quote"'}]
        csv_text = rows_to_csv(rows)
        assert '"has, comma and ""quote"""' in csv_text

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_save_rows_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        save_rows([{"a": 1, "b": 2}], path)
        assert path.read_text().startswith("a,b")

    def test_save_rows_jsonl(self, tmp_path):
        path = tmp_path / "out.jsonl"
        save_rows([{"a": 1}, {"a": 2}], path)
        records = [json.loads(line) for line in path.read_text().strip().splitlines()]
        assert records == [{"a": 1}, {"a": 2}]

    def test_save_rows_creates_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "out.csv"
        save_rows([{"x": 1}], path)
        assert path.exists()
