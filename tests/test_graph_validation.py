"""Tests for repro.graph.validation."""

import numpy as np
import pytest

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.builders import from_edge_list
from repro.graph.validation import validate_graph


class TestValidateGraph:
    def test_healthy_graph_passes(self, triangle_graph):
        report = validate_graph(triangle_graph)
        assert report.valid
        assert bool(report) is True

    def test_isolated_nodes_reported_but_valid(self):
        graph = from_edge_list([(0, 1)], n_nodes=4)
        report = validate_graph(graph)
        assert report.valid
        assert any("isolated" in issue for issue in report.issues)

    def test_nan_attributes_invalid(self, triangle_graph):
        bad = triangle_graph.with_attributes(np.full((3, 2), np.nan))
        report = validate_graph(bad)
        assert not report.valid

    def test_strict_mode_raises(self, triangle_graph):
        bad = triangle_graph.with_attributes(np.full((3, 1), np.inf))
        with pytest.raises(ValueError):
            validate_graph(bad, strict=True)

    def test_strict_mode_does_not_raise_for_warnings(self):
        graph = from_edge_list([(0, 1)], n_nodes=3)
        report = validate_graph(graph, strict=True)
        assert report.valid

    def test_negative_weights_detected(self):
        adjacency = np.array([[0.0, -1.0], [-1.0, 0.0]])
        graph = AttributedGraph.__new__(AttributedGraph)
        # Bypass the constructor's own checks to exercise the validator.
        import scipy.sparse as sp

        graph._adjacency = sp.csr_matrix(adjacency)
        graph._attributes = np.ones((2, 1))
        graph.name = "bad"
        report = validate_graph(graph)
        assert not report.valid
        assert any("negative" in issue for issue in report.issues)
