"""Edge-case coverage for the matching rules and CSLS.

Complements ``test_similarity.py`` with the corners the chunked kernels must
agree on: rectangular matrices, argmax ties, ``k > n_target``, empty inputs,
and the greedy matcher's equivalence to a brute-force reference.
"""

import numpy as np
import pytest

from repro.similarity.csls import csls_matrix
from repro.similarity.lisi import hubness_degrees
from repro.similarity.matching import (
    greedy_match,
    mutual_nearest_neighbors,
    top_k_indices,
)
from repro.similarity.measures import cosine_similarity


def _reference_greedy(scores: np.ndarray):
    """Brute-force greedy matching: repeatedly take the global max."""
    scores = scores.astype(np.float64, copy=True)
    n_source, n_target = scores.shape
    pairs = []
    for _ in range(min(n_source, n_target)):
        i, j = np.unravel_index(np.argmax(scores), scores.shape)
        pairs.append((int(i), int(j)))
        scores[i, :] = -np.inf
        scores[:, j] = -np.inf
    return pairs


class TestGreedyMatch:
    @pytest.mark.parametrize("shape", [(6, 6), (3, 9), (9, 3), (1, 5), (5, 1)])
    def test_matches_reference_on_unique_scores(self, shape):
        rng = np.random.default_rng(0)
        # Distinct entries so the greedy order is unambiguous.
        scores = rng.permutation(shape[0] * shape[1]).reshape(shape).astype(float)
        assert greedy_match(scores) == _reference_greedy(scores)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_on_random_floats(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.standard_normal((8, 11))
        assert greedy_match(scores) == _reference_greedy(scores)

    def test_rectangular_saturates_smaller_side(self):
        rng = np.random.default_rng(1)
        tall = rng.standard_normal((10, 4))
        pairs = greedy_match(tall)
        assert len(pairs) == 4
        assert len({j for _, j in pairs}) == 4
        wide = rng.standard_normal((4, 10))
        pairs = greedy_match(wide)
        assert len(pairs) == 4
        assert len({i for i, _ in pairs}) == 4

    def test_tie_breaks_by_lowest_row_then_column(self):
        scores = np.array(
            [
                [1.0, 1.0],
                [1.0, 1.0],
            ]
        )
        assert greedy_match(scores) == [(0, 0), (1, 1)]

    def test_all_equal_scores_still_one_to_one(self):
        pairs = greedy_match(np.zeros((4, 4)))
        assert sorted(i for i, _ in pairs) == [0, 1, 2, 3]
        assert sorted(j for _, j in pairs) == [0, 1, 2, 3]

    def test_empty_inputs(self):
        assert greedy_match(np.zeros((0, 0))) == []
        assert greedy_match(np.zeros((0, 4))) == []
        assert greedy_match(np.zeros((4, 0))) == []

    def test_negative_infinity_scores_still_match(self):
        scores = np.full((3, 3), -np.inf)
        scores[0, 0] = 1.0
        pairs = greedy_match(scores)
        assert pairs[0] == (0, 0)
        assert len(pairs) == 3  # remaining rows matched among -inf columns

    def test_single_cell(self):
        assert greedy_match(np.array([[2.5]])) == [(0, 0)]


class TestMutualNearestNeighborTies:
    def test_row_tie_resolves_to_lowest_column(self):
        scores = np.array([[1.0, 1.0, 0.0]])
        # argmax tie in the row goes to column 0; column 0's best is row 0.
        assert mutual_nearest_neighbors(scores) == [(0, 0)]

    def test_column_tie_resolves_to_lowest_row(self):
        scores = np.array([[1.0], [1.0]])
        # Both rows prefer the only column; the column's argmax tie picks
        # row 0, so only (0, 0) is mutual.
        assert mutual_nearest_neighbors(scores) == [(0, 0)]

    def test_rectangular_no_mutual_pairs(self):
        scores = np.array([[0.0, 1.0], [0.0, 2.0], [0.0, 3.0]])
        # Every row prefers column 1 but column 1 prefers row 2 only;
        # column 0 is nobody's argmax.
        assert mutual_nearest_neighbors(scores) == [(2, 1)]

    def test_empty_rectangles(self):
        assert mutual_nearest_neighbors(np.zeros((0, 3))) == []
        assert mutual_nearest_neighbors(np.zeros((3, 0))) == []


class TestTopKEdgeCases:
    def test_k_larger_than_targets_is_clipped(self):
        scores = np.array([[0.3, 0.1, 0.2]])
        top = top_k_indices(scores, 99)
        np.testing.assert_array_equal(top, [[0, 2, 1]])

    def test_k_equal_width(self):
        scores = np.array([[0.3, 0.1], [0.1, 0.3]])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [[0, 1], [1, 0]])

    def test_zero_width_matrix(self):
        top = top_k_indices(np.zeros((3, 0)), 4)
        assert top.shape == (3, 0)

    def test_zero_rows(self):
        top = top_k_indices(np.zeros((0, 5)), 2)
        assert top.shape == (0, 2)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros(4), 1)


class TestCSLSEdgeCases:
    def test_rectangular_shape(self):
        rng = np.random.default_rng(0)
        source = rng.standard_normal((7, 5))
        target = rng.standard_normal((3, 5))
        assert csls_matrix(source, target, 2).shape == (7, 3)

    def test_neighbors_larger_than_either_side(self):
        rng = np.random.default_rng(1)
        source = rng.standard_normal((3, 4))
        target = rng.standard_normal((5, 4))
        similarity = cosine_similarity(source, target)
        result = csls_matrix(source, target, 100)
        # With m larger than both sides the hubness terms are full means.
        expected = (
            2.0 * similarity
            - similarity.mean(axis=1)[:, None]
            - similarity.mean(axis=0)[None, :]
        )
        np.testing.assert_allclose(result, expected)

    def test_precomputed_similarity_not_mutated(self):
        rng = np.random.default_rng(2)
        source = rng.standard_normal((4, 3))
        target = rng.standard_normal((6, 3))
        similarity = cosine_similarity(source, target)
        before = similarity.copy()
        csls_matrix(source, target, 2, similarity=similarity)
        np.testing.assert_array_equal(similarity, before)

    def test_symmetric_self_alignment_diagonal_is_best(self):
        rng = np.random.default_rng(3)
        embeddings = rng.standard_normal((8, 6))
        scores = csls_matrix(embeddings, embeddings, 3)
        assert (scores.argmax(axis=1) == np.arange(8)).all()

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            csls_matrix(np.zeros((2, 2)), np.zeros((2, 2)), 0)

    def test_out_buffer_receives_result_with_precomputed_similarity(self):
        rng = np.random.default_rng(4)
        source = rng.standard_normal((5, 3))
        target = rng.standard_normal((6, 3))
        similarity = cosine_similarity(source, target)
        out = np.empty((5, 6))
        result = csls_matrix(source, target, 2, similarity=similarity, out=out)
        assert result is out
        np.testing.assert_array_equal(out, csls_matrix(source, target, 2))


class TestHubnessEdgeCases:
    def test_empty_similarity(self):
        source_h, target_h = hubness_degrees(np.zeros((0, 4)), 2)
        assert source_h.shape == (0,)
        np.testing.assert_array_equal(target_h, np.zeros(4))

    def test_single_row(self):
        source_h, target_h = hubness_degrees(np.array([[1.0, 3.0]]), 5)
        assert source_h[0] == pytest.approx(2.0)
        np.testing.assert_allclose(target_h, [1.0, 3.0])
