"""Tests for delta orbit recounting (:mod:`repro.orbits.delta`).

The contract under test: after any edge append/remove batch, the patched
GDV matrix is **bit-identical** to a from-scratch recount of the mutated
graph, the patched result re-enters the content-hash cache under the
mutated graph's hash, and invalid mutations fail loudly.
"""

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.orbits import engine
from repro.orbits.cache import OrbitCache, graph_content_hash
from repro.orbits.delta import apply_edge_batch, delta_count_node_orbits

pytestmark = pytest.mark.skipif(
    "numpy" not in engine.available_backends(),
    reason="vectorized orbit backend unavailable (numpy < 2.0)",
)


def _mutation_batch(graph, rng, n_changes):
    """A disjoint (additions, removals) batch of ``n_changes`` edges each."""
    edge_list = graph.edge_list()
    present = set(edge_list)
    picks = rng.permutation(len(edge_list)).tolist()[:n_changes]
    removals = [edge_list[i] for i in picks]
    additions = []
    n = graph.n_nodes
    while len(additions) < n_changes:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present or edge in additions:
            continue
        additions.append(edge)
    return additions, removals


def _assert_delta_matches_full(graph, additions, removals):
    result = delta_count_node_orbits(
        graph, add_edges=additions, remove_edges=removals
    )
    full = engine.count_node_orbits(result.graph, backend="numpy")
    np.testing.assert_array_equal(result.node_orbits, full)
    assert result.node_orbits.dtype == np.int64
    assert result.n_added == len(additions)
    assert result.n_removed == len(removals)
    return result


class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_batches_on_er_graphs(self, seed):
        graph = erdos_renyi_graph(40 + 5 * seed, 4.0 + 0.5 * seed, random_state=seed)
        rng = np.random.default_rng(100 + seed)
        additions, removals = _mutation_batch(graph, rng, 4)
        _assert_delta_matches_full(graph, additions, removals)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_batches_on_powerlaw_graphs(self, seed):
        graph = powerlaw_cluster_graph(50, 3, 0.6, random_state=seed)
        rng = np.random.default_rng(200 + seed)
        additions, removals = _mutation_batch(graph, rng, 3)
        _assert_delta_matches_full(graph, additions, removals)

    def test_additions_only_and_removals_only(self):
        graph = erdos_renyi_graph(60, 5.0, random_state=1)
        rng = np.random.default_rng(7)
        additions, removals = _mutation_batch(graph, rng, 5)
        _assert_delta_matches_full(graph, additions, [])
        _assert_delta_matches_full(graph, [], removals)

    def test_remove_then_readd_returns_to_base(self):
        graph = erdos_renyi_graph(50, 5.0, random_state=2)
        base = engine.count_node_orbits(graph, backend="numpy")
        edge = graph.edge_list()[3]
        result = delta_count_node_orbits(
            graph, add_edges=[edge], remove_edges=[edge], node_orbits=base
        )
        np.testing.assert_array_equal(result.node_orbits, base)
        assert result.graph == graph

    def test_one_percent_batch(self):
        """The acceptance-criteria scenario: a 1% edge-mutation batch."""
        graph = erdos_renyi_graph(500, 8.0, random_state=7)
        n_changes = max(1, graph.n_edges // 100 // 2)
        rng = np.random.default_rng(42)
        additions, removals = _mutation_batch(graph, rng, n_changes)
        _assert_delta_matches_full(graph, additions, removals)


class TestCacheReentry:
    def test_patched_matrix_lands_under_mutated_hash(self):
        graph = erdos_renyi_graph(60, 5.0, random_state=3)
        cache = OrbitCache()
        # Prime the cache with the base graph's counts.
        base = engine.count_node_orbits(graph, backend="numpy", cache=cache)
        rng = np.random.default_rng(9)
        additions, removals = _mutation_batch(graph, rng, 3)
        result = delta_count_node_orbits(
            graph, add_edges=additions, remove_edges=removals, cache=cache
        )
        cached = cache.get_node_orbits(graph_content_hash(result.graph))
        assert cached is not None
        np.testing.assert_array_equal(cached, result.node_orbits)
        # A later engine count of the mutated graph is a cache hit that
        # compares bit-identically to a cold from-scratch recount.
        via_cache = engine.count_node_orbits(
            result.graph, backend="numpy", cache=cache
        )
        cold = engine.count_node_orbits(result.graph, backend="numpy")
        np.testing.assert_array_equal(via_cache, cold)
        # The base entry is untouched.
        np.testing.assert_array_equal(
            cache.get_node_orbits(graph_content_hash(graph)), base
        )


class TestTouchedRadius:
    def test_touched_nodes_within_two_hops(self):
        graph = erdos_renyi_graph(80, 4.0, random_state=4)
        edge = graph.edge_list()[0]
        result = delta_count_node_orbits(graph, remove_edges=[edge])
        adj = graph.adjacency_sets()
        within = set(edge)
        for node in edge:
            within |= adj[node]
        for node in set(within):
            within |= adj[node]
        assert set(result.touched.tolist()) <= within

    def test_untouched_rows_unchanged(self):
        graph = erdos_renyi_graph(80, 4.0, random_state=5)
        base = engine.count_node_orbits(graph, backend="numpy")
        edge = graph.edge_list()[0]
        result = delta_count_node_orbits(
            graph, remove_edges=[edge], node_orbits=base
        )
        untouched = np.setdiff1d(
            np.arange(graph.n_nodes), result.touched, assume_unique=False
        )
        np.testing.assert_array_equal(
            result.node_orbits[untouched], base[untouched]
        )


class TestValidation:
    @pytest.fixture()
    def graph(self):
        return from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)], n_nodes=5)

    def test_remove_absent_edge_rejected(self, graph):
        with pytest.raises(ValueError, match="absent edge"):
            delta_count_node_orbits(graph, remove_edges=[(0, 3)])

    def test_add_present_edge_rejected(self, graph):
        with pytest.raises(ValueError, match="already-present"):
            delta_count_node_orbits(graph, add_edges=[(0, 1)])

    def test_self_loop_rejected(self, graph):
        with pytest.raises(ValueError):
            delta_count_node_orbits(graph, add_edges=[(2, 2)])

    def test_out_of_range_rejected(self, graph):
        with pytest.raises(ValueError):
            delta_count_node_orbits(graph, add_edges=[(0, 99)])

    def test_shape_mismatch_rejected(self, graph):
        with pytest.raises(ValueError, match="shape"):
            delta_count_node_orbits(
                graph, add_edges=[(0, 3)], node_orbits=np.zeros((2, 2))
            )

    def test_apply_edge_batch_mutates_graph_only(self, graph):
        mutated = apply_edge_batch(graph, add_edges=[(0, 3)], remove_edges=[(0, 1)])
        assert mutated.has_edge(0, 3)
        assert not mutated.has_edge(0, 1)
        assert mutated.n_nodes == graph.n_nodes
        # The original is untouched (AttributedGraph is a value object).
        assert graph.has_edge(0, 1)
