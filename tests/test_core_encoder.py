"""Tests for topology-view construction and orbit-weighted encoding."""

import numpy as np
import pytest

from repro.core.config import HTCConfig
from repro.core.encoder import (
    build_topology_views,
    count_orbits_if_needed,
    encode_views,
    make_encoder,
)
from repro.graph.generators import powerlaw_cluster_graph
from repro.utils.sparse import is_symmetric


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(30, 3, n_attributes=4, random_state=0)


class TestBuildTopologyViews:
    def test_orbit_mode_keys(self, graph):
        config = HTCConfig(orbits=[0, 1, 2])
        views = build_topology_views(graph, config)
        assert set(views) == {0, 1, 2}

    def test_adjacency_mode_single_view(self, graph):
        config = HTCConfig(topology_mode="adjacency")
        views = build_topology_views(graph, config)
        assert set(views) == {0}

    def test_diffusion_mode_view_count(self, graph):
        config = HTCConfig(topology_mode="diffusion", diffusion_orders=(1, 2, 3))
        views = build_topology_views(graph, config)
        assert len(views) == 3

    def test_views_are_symmetric_and_square(self, graph):
        config = HTCConfig(orbits=[0, 2, 5])
        for view in build_topology_views(graph, config).values():
            assert view.shape == (30, 30)
            assert is_symmetric(view)

    def test_precomputed_counts_reused(self, graph):
        config = HTCConfig(orbits=[0, 1])
        counts = count_orbits_if_needed(graph, config)
        views_a = build_topology_views(graph, config, counts)
        views_b = build_topology_views(graph, config)
        for key in views_a:
            np.testing.assert_allclose(
                views_a[key].toarray(), views_b[key].toarray()
            )

    def test_count_skipped_for_adjacency_mode(self, graph):
        config = HTCConfig(topology_mode="adjacency")
        assert count_orbits_if_needed(graph, config) is None

    def test_binary_orbits_differ_from_weighted(self, graph):
        weighted = build_topology_views(graph, HTCConfig(orbits=[2]))
        binary = build_topology_views(graph, HTCConfig(orbits=[2], weighted_orbits=False))
        assert not np.allclose(weighted[2].toarray(), binary[2].toarray())


class TestEncoderConstruction:
    def test_make_encoder_dimensions(self):
        config = HTCConfig(embedding_dim=12, n_layers=3)
        encoder = make_encoder(5, config)
        assert encoder.layer_dims == [5, 12, 12, 12]

    def test_encode_views_returns_arrays(self, graph):
        config = HTCConfig(orbits=[0, 1], embedding_dim=8)
        views = build_topology_views(graph, config)
        encoder = make_encoder(graph.n_attributes, config)
        embeddings = encode_views(encoder, views, graph.attributes)
        assert set(embeddings) == {0, 1}
        for embedding in embeddings.values():
            assert embedding.shape == (30, 8)
            assert isinstance(embedding, np.ndarray)
