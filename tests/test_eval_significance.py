"""Tests for multi-run aggregation and the paired bootstrap."""

import numpy as np
import pytest

from repro.baselines import AttributeAligner, DegreeAligner
from repro.datasets.synthetic import tiny_pair
from repro.eval.significance import (
    aggregate_runs,
    compare_methods_on_pair,
    paired_bootstrap,
    per_anchor_hits,
)


class TestAggregateRuns:
    def test_mean_and_std(self):
        runs = [{"p@1": 0.8}, {"p@1": 0.6}]
        aggregated = aggregate_runs(runs)
        assert aggregated["p@1"].mean == pytest.approx(0.7)
        assert aggregated["p@1"].std == pytest.approx(0.1)
        assert aggregated["p@1"].minimum == 0.6
        assert aggregated["p@1"].maximum == 0.8
        assert aggregated["p@1"].n_runs == 2

    def test_multiple_metrics(self):
        runs = [{"p@1": 0.5, "MRR": 0.7}, {"p@1": 0.6, "MRR": 0.8}]
        aggregated = aggregate_runs(runs)
        assert set(aggregated) == {"p@1", "MRR"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_inconsistent_metrics_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([{"p@1": 0.5}, {"MRR": 0.7}])

    def test_str_formatting(self):
        text = str(aggregate_runs([{"p@1": 0.5}])["p@1"])
        assert "p@1" in text and "0.5000" in text


class TestPerAnchorHits:
    def test_identity_matrix(self):
        hits = per_anchor_hits(np.eye(4), np.arange(4), q=1)
        np.testing.assert_array_equal(hits, np.ones(4))

    def test_skips_unmatched(self):
        hits = per_anchor_hits(np.eye(4), np.array([0, -1, 2, -1]), q=1)
        assert hits.shape == (2,)

    def test_mean_equals_precision(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(20, 20))
        truth = rng.permutation(20)
        from repro.eval.metrics import precision_at_q

        assert per_anchor_hits(scores, truth, 5).mean() == pytest.approx(
            precision_at_q(scores, truth, 5)
        )


class TestPairedBootstrap:
    def test_clear_winner(self):
        hits_a = np.ones(50)
        hits_b = np.zeros(50)
        result = paired_bootstrap(hits_a, hits_b, n_resamples=200, random_state=0)
        assert result["difference"] == pytest.approx(1.0)
        assert result["p_a_geq_b"] == 1.0

    def test_identical_methods(self):
        hits = np.random.default_rng(0).integers(0, 2, size=40).astype(float)
        result = paired_bootstrap(hits, hits.copy(), n_resamples=100, random_state=0)
        assert result["difference"] == 0.0
        assert result["p_a_geq_b"] == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.array([]), np.array([]))

    def test_invalid_resamples(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(3), np.zeros(3), n_resamples=0)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2, 30).astype(float)
        b = rng.integers(0, 2, 30).astype(float)
        r1 = paired_bootstrap(a, b, n_resamples=300, random_state=5)
        r2 = paired_bootstrap(a, b, n_resamples=300, random_state=5)
        assert r1 == r2


class TestCompareMethodsOnPair:
    def test_end_to_end(self):
        pair = tiny_pair(n_nodes=30, random_state=0)
        result = compare_methods_on_pair(
            AttributeAligner(),
            DegreeAligner(),
            pair,
            n_resamples=100,
            random_state=0,
        )
        assert set(result) == {"difference", "p_a_geq_b", "n_anchors", "n_resamples"}
        assert result["n_anchors"] == pair.n_anchors
