"""Tests for repro.graph.attributed_graph."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.builders import from_edge_list


class TestConstruction:
    def test_basic_shape(self, triangle_graph):
        assert triangle_graph.n_nodes == 3
        assert triangle_graph.n_edges == 3

    def test_default_attributes_are_constant_column(self, triangle_graph):
        assert triangle_graph.attributes.shape == (3, 1)
        np.testing.assert_array_equal(triangle_graph.attributes, np.ones((3, 1)))

    def test_self_loops_removed(self):
        adjacency = np.array([[1.0, 1.0], [1.0, 1.0]])
        graph = AttributedGraph(adjacency)
        assert graph.adjacency.diagonal().sum() == 0
        assert graph.n_edges == 1

    def test_asymmetric_input_symmetrized(self):
        adjacency = np.array([[0.0, 1.0], [0.0, 0.0]])
        graph = AttributedGraph(adjacency)
        assert graph.has_edge(1, 0)

    def test_asymmetric_rejected_when_not_symmetrizing(self):
        adjacency = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            AttributedGraph(adjacency, ensure_symmetric=False)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((2, 3)))

    def test_attribute_row_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((3, 3)), attributes=np.zeros((2, 4)))

    def test_attribute_1d_rejected(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((3, 3)), attributes=np.zeros(3))


class TestAccessors:
    def test_degrees(self, star_graph):
        np.testing.assert_array_equal(star_graph.degrees, [3, 1, 1, 1])

    def test_average_degree(self, star_graph):
        assert star_graph.average_degree == pytest.approx(1.5)

    def test_neighbors_sorted(self, star_graph):
        np.testing.assert_array_equal(star_graph.neighbors(0), [1, 2, 3])

    def test_neighbors_out_of_range(self, star_graph):
        with pytest.raises(IndexError):
            star_graph.neighbors(10)

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 3)
        assert not path_graph.has_edge(0, 99)

    def test_edge_list_ordered(self, path_graph):
        assert path_graph.edge_list() == [(0, 1), (1, 2), (2, 3)]

    def test_adjacency_sets(self, triangle_graph):
        sets = triangle_graph.adjacency_sets()
        assert sets[0] == {1, 2}
        assert sets[1] == {0, 2}

    def test_n_attributes(self, attributed_graph):
        assert attributed_graph.n_attributes == 2


class TestDerivedGraphs:
    def test_subgraph_relabels(self, path_graph):
        sub = path_graph.subgraph(np.array([1, 2, 3]))
        assert sub.n_nodes == 3
        assert sub.edge_list() == [(0, 1), (1, 2)]

    def test_subgraph_keeps_attributes(self, attributed_graph):
        sub = attributed_graph.subgraph(np.array([0, 2]))
        np.testing.assert_array_equal(sub.attributes, attributed_graph.attributes[[0, 2]])

    def test_with_attributes(self, triangle_graph):
        new_attrs = np.arange(6, dtype=float).reshape(3, 2)
        replaced = triangle_graph.with_attributes(new_attrs)
        np.testing.assert_array_equal(replaced.attributes, new_attrs)
        assert replaced.n_edges == triangle_graph.n_edges

    def test_copy_is_independent(self, triangle_graph):
        copy = triangle_graph.copy()
        copy.attributes[0, 0] = 99.0
        assert triangle_graph.attributes[0, 0] != 99.0

    def test_equality(self, triangle_graph):
        assert triangle_graph == triangle_graph.copy()
        assert triangle_graph != from_edge_list([(0, 1)], n_nodes=3)

    def test_repr_mentions_size(self, triangle_graph):
        assert "n_nodes=3" in repr(triangle_graph)


class TestEmptyAndEdgeCases:
    def test_empty_graph(self):
        graph = AttributedGraph(sp.csr_matrix((4, 4)))
        assert graph.n_edges == 0
        assert graph.edge_list() == []
        assert graph.average_degree == 0.0

    def test_isolated_nodes_have_empty_neighbourhood(self):
        graph = from_edge_list([(0, 1)], n_nodes=4)
        assert graph.neighbors(3).size == 0
