"""Tests for the autograd Tensor: forward values and gradient correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor

from _helpers import numerical_gradient


small_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 4), st.integers(2, 4)),
    elements=st.floats(min_value=-3.0, max_value=3.0),
)


class TestForwardValues:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_array_equal(out.data, [2.0, 3.0])

    def test_sub_and_neg(self):
        out = Tensor([3.0]) - Tensor([1.0])
        np.testing.assert_array_equal(out.data, [2.0])
        np.testing.assert_array_equal((-Tensor([2.0])).data, [-2.0])

    def test_rsub(self):
        out = 5.0 - Tensor([2.0])
        np.testing.assert_array_equal(out.data, [3.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_array_equal(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([6.0]) / Tensor([3.0])
        np.testing.assert_array_equal(out.data, [2.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        np.testing.assert_array_equal(out.data, [4.0, 9.0])

    def test_pow_non_scalar_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(6, dtype=float).reshape(3, 2))
        np.testing.assert_array_equal((a @ b).data, a.data @ b.data)

    def test_transpose(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert a.T.shape == (3, 2)

    def test_sum_and_mean(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert a.sum().item() == 15.0
        assert a.mean().item() == pytest.approx(2.5)

    def test_sum_axis(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        np.testing.assert_array_equal(a.sum(axis=0).data, [3.0, 5.0, 7.0])

    def test_reshape(self):
        a = Tensor(np.arange(6, dtype=float))
        assert a.reshape(2, 3).shape == (2, 3)

    def test_item_on_non_scalar_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        detached = (a * 2).detach()
        assert not detached.requires_grad


class TestBackwardCorrectness:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 1.0])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, [5.0, 7.0])
        np.testing.assert_array_equal(b.grad, [2.0, 3.0])

    def test_matmul_grad_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_value = rng.normal(size=(3, 4))
        b_value = rng.normal(size=(4, 2))

        def loss_a(value):
            return float((value @ b_value).sum())

        a = Tensor(a_value.copy(), requires_grad=True)
        b = Tensor(b_value.copy(), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, numerical_gradient(loss_a, a_value), atol=1e-5)

    def test_division_grad_matches_numerical(self):
        rng = np.random.default_rng(1)
        a_value = rng.uniform(1.0, 2.0, size=(3, 3))
        b_value = rng.uniform(1.0, 2.0, size=(3, 3))

        a = Tensor(a_value.copy(), requires_grad=True)
        b = Tensor(b_value.copy(), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(
            a.grad, numerical_gradient(lambda v: float((v / b_value).sum()), a_value), atol=1e-5
        )
        np.testing.assert_allclose(
            b.grad, numerical_gradient(lambda v: float((a_value / v).sum()), b_value), atol=1e-5
        )

    def test_pow_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a**3).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0, 27.0])

    def test_broadcast_grad_unbroadcasts(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(b.grad, [3.0, 3.0])
        np.testing.assert_array_equal(a.grad, np.ones((3, 2)))

    def test_gradient_accumulates_over_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        ((a * a) + a).sum().backward()
        # d/da (a^2 + a) = 2a + 1 = 5.
        np.testing.assert_allclose(a.grad, [5.0])

    def test_transpose_grad(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        (a.T * 2.0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full((2, 3), 2.0))

    def test_mean_grad(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 1.0 / 8))

    def test_reshape_grad(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(6))

    def test_backward_without_scalar_requires_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_no_grad_for_constant_inputs(self):
        a = Tensor([1.0, 2.0], requires_grad=False)
        b = Tensor([1.0, 1.0], requires_grad=True)
        (a * b).sum().backward()
        assert a.grad is None
        assert b.grad is not None

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    @given(small_arrays)
    @settings(max_examples=20, deadline=None)
    def test_chained_expression_gradient_property(self, values):
        """Gradient of sum((x * x) + 3x) must be 2x + 3 for any x."""
        x = Tensor(values.copy(), requires_grad=True)
        ((x * x) + x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * values + 3.0, atol=1e-8)
