"""Tests for the benchmark regression gate (``benchmarks/check_regression.py``)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


SHARD_PAYLOAD = {
    "command": "python benchmarks/bench_shard.py --quick",
    "within_tolerance": True,
    "memory_ratio": 4.0,
    "speedup": 2.0,
    "sharded": {"wall_s": 3.0},
    "stitch_phase": {
        "identical": True,
        "streaming_below_index": True,
        "memory_ratio": 15.0,
        "streaming_s": 10.0,
    },
}

RUNNER_PAYLOAD = {
    "command": "python benchmarks/bench_runner.py --quick",
    # Parallel-speedup checks only compare when both runs saw >= 2 cpus.
    "cpus": 4,
    "suite": {
        "all_done": True,
        "executors": {
            "serial": {"executor": "serial", "wall_s": 1.0},
            "process-pool": {"executor": "process-pool", "wall_s": 1.5},
            "thread-pool": {"executor": "thread-pool", "wall_s": 1.2},
            "process-pool-shm": {
                "executor": "process-pool-shm",
                "wall_s": 0.6,
            },
        },
        "scheduler_overlap": {"executor": "process-pool", "speedup": 2.5},
    },
    "shm": {
        "executor": "process-pool-shm",
        "bit_identical": True,
        "speedup_vs_serial": 1.7,
    },
    "kernel_memory": {
        "identical": True,
        "memory_ratio": 5.0,
        "chunked_s": 0.5,
    },
    "greedy_memory": {"identical": True, "memory_ratio": 50.0, "heap_s": 0.1},
}


ORBITS_PAYLOAD = {
    "command": "python benchmarks/bench_orbit_counting.py --quick",
    "results": [
        {
            "identical": True,
            "speedup_total": 25.0,
            "backends": {"numpy": {"total_s": 0.004}},
        },
        {
            # The acceptance-criterion graph: optional jit metrics plus the
            # always-measured delta-recount invariants.
            "jit": {
                "available": True,
                "identical": True,
                "speedup_edge": 6.0,
            },
            "delta": {"identical": True, "speedup": 8.0},
        },
    ],
}


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


class TestLookup:
    def test_nested_dicts_and_lists(self):
        payload = {"a": [{"b": {"c": 7}}]}
        assert check_regression.lookup(payload, "a.0.b.c") == 7

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            check_regression.lookup({}, "nope")


class TestSameMode:
    def test_matching_quick_flags(self):
        quick = {"command": "python bench.py --quick"}
        full = {"command": "python bench.py"}
        assert check_regression.same_mode(quick, dict(quick))
        assert check_regression.same_mode(full, dict(full))
        assert not check_regression.same_mode(quick, full)


class TestBackendContext:
    def test_innermost_backend_wins(self):
        assert (
            check_regression.backend_context(
                RUNNER_PAYLOAD, "suite.scheduler_overlap.speedup"
            )
            == "process-pool"
        )
        assert (
            check_regression.backend_context(
                RUNNER_PAYLOAD, "suite.executors.serial.wall_s"
            )
            == "serial"
        )

    def test_no_backend_recorded_is_none(self):
        assert (
            check_regression.backend_context(SHARD_PAYLOAD, "sharded.wall_s")
            is None
        )

    def test_generic_backend_key_also_counts(self):
        payload = {"kernel": {"backend": "numpy", "total_s": 1.0}}
        assert (
            check_regression.backend_context(payload, "kernel.total_s")
            == "numpy"
        )

    def test_missing_path_keeps_outer_context(self):
        assert (
            check_regression.backend_context(
                RUNNER_PAYLOAD, "suite.scheduler_overlap.nope.deeper"
            )
            == "process-pool"
        )


class TestGate:
    def test_identical_runs_pass(self, tmp_path, capsys):
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", SHARD_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_broken_invariant_fails(self, tmp_path):
        bad = dict(SHARD_PAYLOAD, within_tolerance=False)
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", bad)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1

    def test_ratio_floor_always_enforced(self, tmp_path):
        bad = dict(SHARD_PAYLOAD, memory_ratio=1.0)  # below the 1.5 floor
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", bad)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1

    def test_slowdown_fails_in_same_mode(self, tmp_path, capsys):
        slow = dict(SHARD_PAYLOAD, sharded={"wall_s": 30.0})
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", slow)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1
        assert "slowdown" in capsys.readouterr().out

    def test_cross_mode_skips_relative_checks(self, tmp_path, capsys):
        full_baseline = dict(
            SHARD_PAYLOAD,
            command="python benchmarks/bench_shard.py",
            sharded={"wall_s": 0.001},  # would fail the 2x rule if compared
        )
        _write(tmp_path / "baselines", "BENCH_shard.json", full_baseline)
        _write(tmp_path / "fresh", "BENCH_shard.json", SHARD_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 0
        assert "different mode" in capsys.readouterr().out

    def test_missing_fresh_results_fail_with_regen_command(
        self, tmp_path, capsys
    ):
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        (tmp_path / "fresh").mkdir()
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1
        assert "python benchmarks/bench_shard.py" in capsys.readouterr().out

    def test_missing_baseline_is_floors_only(self, tmp_path, capsys):
        (tmp_path / "baselines").mkdir()
        _write(tmp_path / "fresh", "BENCH_shard.json", SHARD_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no committed baseline" in out
        # The note tells the user exactly how to restore relative checks.
        assert "python benchmarks/bench_shard.py" in out

    def test_schema_stale_baseline_fails_with_regen_command(
        self, tmp_path, capsys
    ):
        # A baseline written before the stitch_phase measurement existed:
        # the benchmark schema moved on without regenerating it.
        stale = {
            key: value
            for key, value in SHARD_PAYLOAD.items()
            if key != "stitch_phase"
        }
        _write(tmp_path / "baselines", "BENCH_shard.json", stale)
        _write(tmp_path / "fresh", "BENCH_shard.json", SHARD_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "schema-stale" in out
        assert "python benchmarks/bench_shard.py" in out

    def test_stale_fresh_payload_fails_with_regen_command(
        self, tmp_path, capsys
    ):
        # The inverse: a checked value missing from the *fresh* run means
        # the benchmark output on disk predates the current script.
        stale = {
            key: value
            for key, value in SHARD_PAYLOAD.items()
            if key != "stitch_phase"
        }
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", stale)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "missing from the fresh run" in out
        assert "python benchmarks/bench_shard.py" in out

    def _run_orbits(self, tmp_path, fresh):
        _write(tmp_path / "baselines", "BENCH_orbits.json", ORBITS_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_orbits.json", fresh)
        return check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_orbits.json",
            ]
        )

    def test_optional_jit_metrics_enforced_when_measured(self, tmp_path):
        assert self._run_orbits(tmp_path, ORBITS_PAYLOAD) == 0

    def test_optional_jit_metrics_skip_on_null(self, tmp_path, capsys):
        # Without numba the benchmark records null jit metrics — the
        # optional checks skip instead of failing the gate.
        fresh = json.loads(json.dumps(ORBITS_PAYLOAD))
        fresh["results"][1]["jit"] = {
            "available": False,
            "identical": None,
            "speedup_edge": None,
        }
        assert self._run_orbits(tmp_path, fresh) == 0
        assert "not measurable here" in capsys.readouterr().out

    def test_optional_jit_floor_fails_when_measured_low(self, tmp_path):
        fresh = json.loads(json.dumps(ORBITS_PAYLOAD))
        fresh["results"][1]["jit"]["speedup_edge"] = 1.2  # below the 2.0 floor
        assert self._run_orbits(tmp_path, fresh) == 1

    def test_optional_jit_identity_fails_when_measured_false(self, tmp_path):
        fresh = json.loads(json.dumps(ORBITS_PAYLOAD))
        fresh["results"][1]["jit"]["identical"] = False
        assert self._run_orbits(tmp_path, fresh) == 1

    def test_delta_invariants_always_enforced(self, tmp_path):
        fresh = json.loads(json.dumps(ORBITS_PAYLOAD))
        fresh["results"][1]["delta"]["speedup"] = 3.0  # below the 5.0 floor
        assert self._run_orbits(tmp_path, fresh) == 1

    def test_missing_optional_subtree_is_schema_stale(self, tmp_path, capsys):
        # null skips, but a *missing* jit subtree means the benchmark
        # output predates the script — that still fails loudly.
        fresh = json.loads(json.dumps(ORBITS_PAYLOAD))
        del fresh["results"][1]["jit"]
        assert self._run_orbits(tmp_path, fresh) == 1
        assert "missing from the fresh run" in capsys.readouterr().out

    def test_matching_executors_compare_and_pass(self, tmp_path):
        _write(tmp_path / "baselines", "BENCH_runner.json", RUNNER_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_runner.json", RUNNER_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_runner.json",
            ]
        )
        assert code == 0

    def test_different_executor_skips_relative_check(self, tmp_path, capsys):
        # On a machine without process-pool support, "auto" resolves to a
        # different executor; its overlap speedup is not comparable to the
        # committed baseline and must be skipped, not failed.
        fresh = json.loads(json.dumps(RUNNER_PAYLOAD))
        fresh["suite"]["scheduler_overlap"] = {
            "executor": "thread-pool",
            "speedup": 0.1,  # would fail the 0.5x rule if compared
        }
        _write(tmp_path / "baselines", "BENCH_runner.json", RUNNER_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_runner.json", fresh)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_runner.json",
            ]
        )
        assert code == 0
        assert "different backend" in capsys.readouterr().out

    def test_matching_executor_still_catches_collapse(self, tmp_path, capsys):
        fresh = json.loads(json.dumps(RUNNER_PAYLOAD))
        fresh["suite"]["scheduler_overlap"]["speedup"] = 0.1
        _write(tmp_path / "baselines", "BENCH_runner.json", RUNNER_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_runner.json", fresh)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_runner.json",
            ]
        )
        assert code == 1
        assert "of baseline" in capsys.readouterr().out

    def _run_runner(self, tmp_path, baseline, fresh):
        _write(tmp_path / "baselines", "BENCH_runner.json", baseline)
        _write(tmp_path / "fresh", "BENCH_runner.json", fresh)
        return check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_runner.json",
            ]
        )

    def test_single_cpu_fresh_run_skips_parallel_checks(self, tmp_path, capsys):
        # A 1-cpu container cannot demonstrate parallel speedups: the shm
        # floor and every pooled relative check skip by name, with both
        # recorded cpu counts, instead of failing the gate.
        fresh = json.loads(json.dumps(RUNNER_PAYLOAD))
        fresh["cpus"] = 1
        fresh["shm"]["speedup_vs_serial"] = 0.7  # below the 1.3 floor
        fresh["suite"]["executors"]["process-pool"]["wall_s"] = 99.0
        assert self._run_runner(tmp_path, RUNNER_PAYLOAD, fresh) == 0
        out = capsys.readouterr().out
        assert (
            "shm.speedup_vs_serial: parallel-speedup check needs >= 2 cpus"
            in out
        )
        assert "baseline recorded 4 cpu(s), fresh 1" in out
        assert (
            "suite.executors.process-pool.wall_s: parallel-speedup check"
            in out
        )

    def test_single_cpu_baseline_skips_relative_parallel_checks(
        self, tmp_path, capsys
    ):
        # The inverse: a baseline regenerated on a 1-cpu box cannot anchor
        # relative parallel comparisons — but the shm speedup *floor* only
        # depends on the fresh run's cpus, so it still enforces.
        baseline = json.loads(json.dumps(RUNNER_PAYLOAD))
        baseline["cpus"] = 1
        fresh = json.loads(json.dumps(RUNNER_PAYLOAD))
        fresh["suite"]["executors"]["thread-pool"]["wall_s"] = 99.0
        assert self._run_runner(tmp_path, baseline, fresh) == 0
        out = capsys.readouterr().out
        assert "baseline recorded 1 cpu(s), fresh 4" in out

    def test_multi_cpu_shm_floor_enforced(self, tmp_path):
        fresh = json.loads(json.dumps(RUNNER_PAYLOAD))
        fresh["shm"]["speedup_vs_serial"] = 1.1  # below the 1.3 floor
        assert self._run_runner(tmp_path, RUNNER_PAYLOAD, fresh) == 1

    def test_shm_bit_identical_enforced_regardless_of_cpus(self, tmp_path):
        fresh = json.loads(json.dumps(RUNNER_PAYLOAD))
        fresh["cpus"] = 1
        fresh["shm"]["bit_identical"] = False
        assert self._run_runner(tmp_path, RUNNER_PAYLOAD, fresh) == 1

    def test_unrecorded_cpus_still_compares(self, tmp_path):
        # Payloads predating the cpus field keep the old behaviour: the
        # guard cannot prove the box was too small, so the check runs.
        baseline = json.loads(json.dumps(RUNNER_PAYLOAD))
        del baseline["cpus"]
        fresh = json.loads(json.dumps(baseline))
        fresh["shm"]["speedup_vs_serial"] = 1.1
        assert self._run_runner(tmp_path, baseline, fresh) == 1
