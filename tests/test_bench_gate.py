"""Tests for the benchmark regression gate (``benchmarks/check_regression.py``)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


SHARD_PAYLOAD = {
    "command": "python benchmarks/bench_shard.py --quick",
    "within_tolerance": True,
    "memory_ratio": 4.0,
    "speedup": 2.0,
    "sharded": {"wall_s": 3.0},
}


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


class TestLookup:
    def test_nested_dicts_and_lists(self):
        payload = {"a": [{"b": {"c": 7}}]}
        assert check_regression.lookup(payload, "a.0.b.c") == 7

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            check_regression.lookup({}, "nope")


class TestSameMode:
    def test_matching_quick_flags(self):
        quick = {"command": "python bench.py --quick"}
        full = {"command": "python bench.py"}
        assert check_regression.same_mode(quick, dict(quick))
        assert check_regression.same_mode(full, dict(full))
        assert not check_regression.same_mode(quick, full)


class TestGate:
    def test_identical_runs_pass(self, tmp_path, capsys):
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", SHARD_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_broken_invariant_fails(self, tmp_path):
        bad = dict(SHARD_PAYLOAD, within_tolerance=False)
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", bad)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1

    def test_ratio_floor_always_enforced(self, tmp_path):
        bad = dict(SHARD_PAYLOAD, memory_ratio=1.0)  # below the 1.5 floor
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", bad)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1

    def test_slowdown_fails_in_same_mode(self, tmp_path, capsys):
        slow = dict(SHARD_PAYLOAD, sharded={"wall_s": 30.0})
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        _write(tmp_path / "fresh", "BENCH_shard.json", slow)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1
        assert "slowdown" in capsys.readouterr().out

    def test_cross_mode_skips_relative_checks(self, tmp_path, capsys):
        full_baseline = dict(
            SHARD_PAYLOAD,
            command="python benchmarks/bench_shard.py",
            sharded={"wall_s": 0.001},  # would fail the 2x rule if compared
        )
        _write(tmp_path / "baselines", "BENCH_shard.json", full_baseline)
        _write(tmp_path / "fresh", "BENCH_shard.json", SHARD_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 0
        assert "different mode" in capsys.readouterr().out

    def test_missing_fresh_results_fail(self, tmp_path):
        _write(tmp_path / "baselines", "BENCH_shard.json", SHARD_PAYLOAD)
        (tmp_path / "fresh").mkdir()
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 1

    def test_missing_baseline_is_floors_only(self, tmp_path, capsys):
        (tmp_path / "baselines").mkdir()
        _write(tmp_path / "fresh", "BENCH_shard.json", SHARD_PAYLOAD)
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--fresh-dir", str(tmp_path / "fresh"),
                "--files", "BENCH_shard.json",
            ]
        )
        assert code == 0
        assert "no committed baseline" in capsys.readouterr().out
