"""Tests for HTCConfig validation and derived properties."""

import pytest

from repro.core.config import HTCConfig


class TestHTCConfig:
    def test_defaults_use_all_orbits(self):
        config = HTCConfig()
        assert config.resolved_orbits == tuple(range(13))

    def test_explicit_orbits(self):
        config = HTCConfig(orbits=[0, 3, 5])
        assert config.resolved_orbits == (0, 3, 5)

    def test_range_accepted(self):
        config = HTCConfig(orbits=range(4))
        assert config.resolved_orbits == (0, 1, 2, 3)

    def test_hidden_dims(self):
        config = HTCConfig(embedding_dim=32, n_layers=3)
        assert config.hidden_dims == (32, 32, 32)

    def test_updated_returns_modified_copy(self):
        config = HTCConfig(epochs=50)
        changed = config.updated(epochs=10, embedding_dim=8)
        assert changed.epochs == 10
        assert changed.embedding_dim == 8
        assert config.epochs == 50

    def test_invalid_topology_mode(self):
        with pytest.raises(ValueError):
            HTCConfig(topology_mode="magic")

    def test_invalid_orbit_id(self):
        with pytest.raises(ValueError):
            HTCConfig(orbits=[13])

    def test_empty_orbits(self):
        with pytest.raises(ValueError):
            HTCConfig(orbits=[])

    @pytest.mark.parametrize(
        "field,value",
        [
            ("embedding_dim", 0),
            ("n_layers", 0),
            ("learning_rate", 0.0),
            ("epochs", 0),
            ("n_neighbors", 0),
            ("reinforcement_rate", 1.0),
            ("max_refinement_iterations", 0),
        ],
    )
    def test_invalid_numeric_fields(self, field, value):
        with pytest.raises(ValueError):
            HTCConfig(**{field: value})

    def test_diffusion_mode_valid(self):
        config = HTCConfig(topology_mode="diffusion", diffusion_orders=(1, 2))
        assert config.topology_mode == "diffusion"
