"""Tests for HTCConfig validation and derived properties."""

import warnings

import pytest

import repro.core.config as config_module
from repro.core.config import HTCConfig


class TestHTCConfig:
    def test_defaults_use_all_orbits(self):
        config = HTCConfig()
        assert config.resolved_orbits == tuple(range(13))

    def test_explicit_orbits(self):
        config = HTCConfig(orbits=[0, 3, 5])
        assert config.resolved_orbits == (0, 3, 5)

    def test_range_accepted(self):
        config = HTCConfig(orbits=range(4))
        assert config.resolved_orbits == (0, 1, 2, 3)

    def test_hidden_dims(self):
        config = HTCConfig(embedding_dim=32, n_layers=3)
        assert config.hidden_dims == (32, 32, 32)

    def test_updated_returns_modified_copy(self):
        config = HTCConfig(epochs=50)
        changed = config.updated(epochs=10, embedding_dim=8)
        assert changed.epochs == 10
        assert changed.embedding_dim == 8
        assert config.epochs == 50

    def test_invalid_topology_mode(self):
        with pytest.raises(ValueError):
            HTCConfig(topology_mode="magic")

    def test_invalid_orbit_id(self):
        with pytest.raises(ValueError):
            HTCConfig(orbits=[13])

    def test_empty_orbits(self):
        with pytest.raises(ValueError):
            HTCConfig(orbits=[])

    @pytest.mark.parametrize(
        "field,value",
        [
            ("embedding_dim", 0),
            ("n_layers", 0),
            ("learning_rate", 0.0),
            ("epochs", 0),
            ("n_neighbors", 0),
            ("reinforcement_rate", 1.0),
            ("max_refinement_iterations", 0),
        ],
    )
    def test_invalid_numeric_fields(self, field, value):
        with pytest.raises(ValueError):
            HTCConfig(**{field: value})

    def test_diffusion_mode_valid(self):
        config = HTCConfig(topology_mode="diffusion", diffusion_orders=(1, 2))
        assert config.topology_mode == "diffusion"


class TestOrbitBackendDeprecation:
    """Locks the PR-5 ``orbit_backend`` alias: warns once, still works."""

    def test_explicit_backend_warns_once_and_still_resolves(self, monkeypatch):
        from repro.orbits.engine import orbit_registry

        monkeypatch.setattr(config_module, "_ORBIT_BACKEND_WARNED", False)
        with pytest.warns(DeprecationWarning, match="orbit_backend"):
            config = HTCConfig(orbit_backend="numpy")
        # The alias keeps resolving through the shared "orbit" registry.
        assert config.orbit_backend == "numpy"
        assert orbit_registry().resolve(config.orbit_backend) == "numpy"
        # Warn-once: a second explicit use stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            HTCConfig(orbit_backend="numpy")

    def test_auto_default_never_warns(self, monkeypatch):
        monkeypatch.setattr(config_module, "_ORBIT_BACKEND_WARNED", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            HTCConfig()

    def test_invalid_backend_still_rejected(self):
        with pytest.raises(ValueError, match="orbit_backend"):
            HTCConfig(orbit_backend="abacus")


class TestExecutorBackendField:
    def test_default_is_auto(self):
        assert HTCConfig().executor_backend == "auto"

    def test_explicit_backends_accepted(self):
        for name in ("serial", "thread-pool"):
            assert HTCConfig(executor_backend=name).executor_backend == name

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="executor_backend"):
            HTCConfig(executor_backend="carrier-pigeon")
