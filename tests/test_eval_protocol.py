"""Tests for the experiment protocol, robustness sweep, hyper-parameter sweep,
ablation runner, and reporting helpers."""

import pytest

from repro.baselines import AttributeAligner, DegreeAligner, IsoRank
from repro.core.config import HTCConfig
from repro.datasets.synthetic import econ, tiny_pair
from repro.eval.ablation import run_ablation
from repro.eval.hyperparameter import sweep_hyperparameter, sweepable_parameters
from repro.eval.protocol import best_by_metric, run_comparison, run_method
from repro.eval.reporting import format_importance_ranking, format_series, format_table
from repro.eval.robustness import degradation, run_robustness


@pytest.fixture(scope="module")
def pair():
    return tiny_pair(n_nodes=30, random_state=0)


FAST_CONFIG = HTCConfig(
    epochs=5, embedding_dim=8, orbits=[0, 1], n_neighbors=5, random_state=0
)


class TestRunMethod:
    def test_result_fields(self, pair):
        result = run_method(DegreeAligner(), pair, random_state=0)
        assert result.method == "Degree"
        assert result.dataset == pair.name
        assert {"p@1", "p@10", "MRR"} <= set(result.metrics)
        assert result.time_seconds >= 0

    def test_supervised_method_gets_anchors(self, pair):
        result = run_method(IsoRank(n_iterations=5), pair, train_ratio=0.2, random_state=0)
        assert result.metrics["p@1"] >= 0.0

    def test_multiple_runs_averaged(self, pair):
        result = run_method(AttributeAligner(), pair, n_runs=3, random_state=0)
        assert result.n_runs == 3

    def test_invalid_runs(self, pair):
        with pytest.raises(ValueError):
            run_method(DegreeAligner(), pair, n_runs=0)

    def test_htc_stage_times_collected(self, pair):
        from repro.core import HTCAligner

        result = run_method(HTCAligner(FAST_CONFIG), pair, random_state=0)
        assert "multi_orbit_training" in result.stage_times

    def test_as_row_flattens(self, pair):
        row = run_method(DegreeAligner(), pair, random_state=0).as_row()
        assert row["method"] == "Degree"
        assert "p@1" in row and "time_s" in row


class TestRunComparison:
    def test_cross_product(self, pair):
        results = run_comparison(
            [DegreeAligner(), AttributeAligner()], [pair], random_state=0
        )
        assert len(results) == 2
        assert {r.method for r in results} == {"Degree", "Attribute"}

    def test_best_by_metric(self, pair):
        results = run_comparison(
            [DegreeAligner(), AttributeAligner()], [pair], random_state=0
        )
        best = best_by_metric(results, "p@1")
        assert best.metrics["p@1"] == max(r.metrics["p@1"] for r in results)

    def test_best_by_metric_empty(self):
        assert best_by_metric([], "p@1") is None


class TestRobustness:
    def test_points_cover_grid(self):
        points = run_robustness(
            [DegreeAligner()],
            econ,
            noise_ratios=(0.1, 0.3),
            scale=0.3,
            random_state=0,
        )
        assert len(points) == 2
        assert {p.noise_ratio for p in points} == {0.1, 0.3}

    def test_degradation_computation(self):
        points = run_robustness(
            [AttributeAligner()],
            econ,
            noise_ratios=(0.1, 0.5),
            scale=0.3,
            random_state=0,
        )
        drop = degradation(points, "Attribute")
        assert isinstance(drop, float)

    def test_degradation_needs_two_points(self):
        points = run_robustness(
            [DegreeAligner()], econ, noise_ratios=(0.1,), scale=0.3, random_state=0
        )
        with pytest.raises(ValueError):
            degradation(points, "Degree")

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            run_robustness([DegreeAligner()], econ, noise_ratios=(1.5,), scale=0.3)


class TestHyperparameterSweep:
    def test_sweepable_parameters(self):
        assert set(sweepable_parameters()) == {
            "n_orbits",
            "embedding_dim",
            "n_neighbors",
            "reinforcement_rate",
        }

    def test_orbit_sweep(self, pair):
        points = sweep_hyperparameter(
            "n_orbits", [1, 3], pair, base_config=FAST_CONFIG, random_state=0
        )
        assert [p.value for p in points] == [1.0, 3.0]
        assert all("p@1" in p.metrics for p in points)

    def test_unknown_parameter(self, pair):
        with pytest.raises(KeyError):
            sweep_hyperparameter("dropout", [0.1], pair)

    def test_empty_values(self, pair):
        with pytest.raises(ValueError):
            sweep_hyperparameter("n_orbits", [], pair)


class TestAblationRunner:
    def test_runs_requested_variants(self, pair):
        results = run_ablation(
            [pair], variants=("HTC-L", "HTC-H"), base_config=FAST_CONFIG, random_state=0
        )
        assert {r.method for r in results} == {"HTC-L", "HTC-H"}


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"method": "HTC", "p@1": 0.84, "time_s": 87.5},
            {"method": "GAlign", "p@1": 0.82, "time_s": 92.4},
        ]
        text = format_table(rows, title="Table II")
        assert "Table II" in text
        assert "HTC" in text and "GAlign" in text
        assert "0.8400" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_table_heterogeneous_columns(self):
        rows = [{"a": 1}, {"b": 2.0}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_format_series(self):
        text = format_series(
            {"HTC": [(0.1, 0.99), (0.5, 0.75)]}, x_label="noise", y_label="p@1"
        )
        assert "HTC" in text and "0.100" in text and "0.7500" in text

    def test_format_importance_ranking(self):
        text = format_importance_ranking({0: 0.2, 3: 0.8}, title="orbit importance")
        lines = text.splitlines()
        assert "orbit  3" in lines[1]
        assert "#" in lines[1]
