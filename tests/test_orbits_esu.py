"""Tests for the ESU connected-subgraph enumerator."""

from itertools import combinations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_networkx
from repro.orbits.esu import enumerate_connected_subgraphs


def _reference_enumeration(nx_graph, size):
    found = set()
    for nodes in combinations(sorted(nx_graph.nodes()), size):
        if nx.is_connected(nx_graph.subgraph(nodes)):
            found.add(tuple(sorted(nodes)))
    return found


class TestESU:
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_matches_reference_on_random_graph(self, size):
        nx_graph = nx.gnp_random_graph(12, 0.3, seed=0)
        graph = from_networkx(nx_graph)
        esu = set(enumerate_connected_subgraphs(graph.adjacency_sets(), size))
        assert esu == _reference_enumeration(nx_graph, size)

    def test_no_duplicates(self):
        nx_graph = nx.gnp_random_graph(12, 0.4, seed=1)
        graph = from_networkx(nx_graph)
        subgraphs = list(enumerate_connected_subgraphs(graph.adjacency_sets(), 4))
        assert len(subgraphs) == len(set(subgraphs))

    def test_path_graph_counts(self):
        # A path on n nodes has exactly n-k+1 connected subgraphs of size k.
        nx_graph = nx.path_graph(10)
        graph = from_networkx(nx_graph)
        for size in (2, 3, 4):
            found = list(enumerate_connected_subgraphs(graph.adjacency_sets(), size))
            assert len(found) == 10 - size + 1

    def test_complete_graph_counts(self):
        nx_graph = nx.complete_graph(7)
        graph = from_networkx(nx_graph)
        found = list(enumerate_connected_subgraphs(graph.adjacency_sets(), 4))
        assert len(found) == 35  # C(7, 4)

    def test_size_one_yields_all_nodes(self):
        graph = from_networkx(nx.empty_graph(5))
        assert list(enumerate_connected_subgraphs(graph.adjacency_sets(), 1)) == [
            (0,),
            (1,),
            (2,),
            (3,),
            (4,),
        ]

    def test_invalid_size(self):
        graph = from_networkx(nx.path_graph(3))
        with pytest.raises(ValueError):
            list(enumerate_connected_subgraphs(graph.adjacency_sets(), 0))

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_property_matches_reference(self, seed):
        nx_graph = nx.gnp_random_graph(9, 0.35, seed=seed)
        graph = from_networkx(nx_graph)
        esu = set(enumerate_connected_subgraphs(graph.adjacency_sets(), 4))
        assert esu == _reference_enumeration(nx_graph, 4)
