"""Tests for the ablation variants of Table III."""

import pytest

from repro.core.config import HTCConfig
from repro.core.variants import (
    ABLATION_VARIANTS,
    EXTRA_ABLATION_VARIANTS,
    all_variants,
    make_variant,
)


class TestMakeVariant:
    def test_paper_variant_names_available(self):
        for name in ABLATION_VARIANTS:
            aligner = make_variant(name)
            assert aligner.name == name

    def test_low_order_variant_uses_adjacency(self):
        aligner = make_variant("HTC-L")
        assert aligner.config.topology_mode == "adjacency"
        assert aligner.config.use_refinement is False

    def test_high_order_variant_without_refinement(self):
        aligner = make_variant("HTC-H")
        assert aligner.config.topology_mode == "orbit"
        assert aligner.config.use_refinement is False

    def test_lt_variant(self):
        aligner = make_variant("HTC-LT")
        assert aligner.config.topology_mode == "adjacency"
        assert aligner.config.use_refinement is True

    def test_dt_variant_uses_diffusion(self):
        aligner = make_variant("HTC-DT")
        assert aligner.config.topology_mode == "diffusion"

    def test_full_variant(self):
        aligner = make_variant("HTC")
        assert aligner.config.topology_mode == "orbit"
        assert aligner.config.use_refinement is True

    def test_binary_variant(self):
        aligner = make_variant("HTC-binary")
        assert aligner.config.weighted_orbits is False

    def test_cosine_variant(self):
        aligner = make_variant("HTC-cosine")
        assert aligner.config.use_lisi is False

    def test_base_config_propagated(self):
        base = HTCConfig(embedding_dim=7, epochs=3)
        aligner = make_variant("HTC-H", base)
        assert aligner.config.embedding_dim == 7
        assert aligner.config.epochs == 3

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            make_variant("HTC-XYZ")

    def test_extra_variants_listed(self):
        assert "HTC-binary" in EXTRA_ABLATION_VARIANTS
        assert "HTC-cosine" in EXTRA_ABLATION_VARIANTS


class TestAllVariants:
    def test_returns_every_paper_variant(self):
        variants = all_variants()
        assert set(variants) == set(ABLATION_VARIANTS)
