"""Tests for repro.graph.diffusion (the HTC-DT substrate)."""

import numpy as np
import pytest

from repro.graph.diffusion import (
    diffusion_matrix_family,
    heat_kernel_matrix,
    ppr_matrix,
)
from repro.graph.generators import powerlaw_cluster_graph


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(30, 3, random_state=0)


class TestPPR:
    def test_shape(self, graph):
        matrix = ppr_matrix(graph, order=3)
        assert matrix.shape == (30, 30)

    def test_non_negative(self, graph):
        matrix = ppr_matrix(graph, order=3)
        assert (matrix.toarray() >= 0).all()

    def test_higher_order_is_denser(self, graph):
        low = ppr_matrix(graph, order=1, threshold=1e-6)
        high = ppr_matrix(graph, order=5, threshold=1e-6)
        assert high.nnz >= low.nnz

    def test_invalid_alpha(self, graph):
        with pytest.raises(ValueError):
            ppr_matrix(graph, alpha=0.0)
        with pytest.raises(ValueError):
            ppr_matrix(graph, alpha=1.0)

    def test_invalid_order(self, graph):
        with pytest.raises(ValueError):
            ppr_matrix(graph, order=0)

    def test_threshold_sparsifies(self, graph):
        dense = ppr_matrix(graph, order=5, threshold=0.0)
        sparse = ppr_matrix(graph, order=5, threshold=1e-2)
        assert sparse.nnz <= dense.nnz

    def test_deterministic(self, graph):
        a = ppr_matrix(graph, order=3).toarray()
        b = ppr_matrix(graph, order=3).toarray()
        np.testing.assert_array_equal(a, b)


class TestHeatKernel:
    def test_shape_and_nonnegative(self, graph):
        matrix = heat_kernel_matrix(graph, t=2.0, order=4)
        assert matrix.shape == (30, 30)
        assert (matrix.toarray() >= -1e-12).all()

    def test_invalid_t(self, graph):
        with pytest.raises(ValueError):
            heat_kernel_matrix(graph, t=0.0)

    def test_invalid_order(self, graph):
        with pytest.raises(ValueError):
            heat_kernel_matrix(graph, order=0)


class TestDiffusionFamily:
    def test_one_matrix_per_order(self, graph):
        family = diffusion_matrix_family(graph, orders=[1, 2, 3])
        assert len(family) == 3

    def test_empty_orders_rejected(self, graph):
        with pytest.raises(ValueError):
            diffusion_matrix_family(graph, orders=[])
