"""Tests for the SGD and Adam optimisers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def _quadratic_loss(parameter):
    """f(w) = sum((w - 3)^2), minimised at w = 3."""
    return ((parameter - Tensor(np.full_like(parameter.data, 3.0))) ** 2).sum()


class TestSGD:
    def test_single_step_direction(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD([parameter], lr=0.1)
        loss = _quadratic_loss(parameter)
        loss.backward()
        optimizer.step()
        # Gradient at 0 is -6, so the value must increase.
        assert parameter.data[0] > 0

    def test_converges_to_minimum(self):
        parameter = Parameter(np.zeros(3))
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            _quadratic_loss(parameter).backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(3, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(1))
        momentum = Parameter(np.zeros(1))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            for parameter, optimizer in ((plain, opt_plain), (momentum, opt_momentum)):
                optimizer.zero_grad()
                _quadratic_loss(parameter).backward()
                optimizer.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        SGD([parameter], lr=0.1).step()
        np.testing.assert_array_equal(parameter.data, [1.0])

    def test_invalid_settings(self):
        parameter = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.0)
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_to_minimum(self):
        parameter = Parameter(np.zeros(4))
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            _quadratic_loss(parameter).backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(4, 3.0), atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        plain = Parameter(np.zeros(1))
        decayed = Parameter(np.zeros(1))
        opt_plain = Adam([plain], lr=0.05)
        opt_decayed = Adam([decayed], lr=0.05, weight_decay=1.0)
        for _ in range(300):
            for parameter, optimizer in ((plain, opt_plain), (decayed, opt_decayed)):
                optimizer.zero_grad()
                _quadratic_loss(parameter).backward()
                optimizer.step()
        assert decayed.data[0] < plain.data[0]

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the very first update ~= lr in magnitude.
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], lr=0.1)
        _quadratic_loss(parameter).backward()
        optimizer.step()
        assert abs(parameter.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_settings(self):
        parameter = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            Adam([parameter], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([parameter], betas=(1.0, 0.9))
        with pytest.raises(ValueError):
            Adam([parameter], weight_decay=-0.1)

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(1))
        optimizer = Adam([parameter])
        _quadratic_loss(parameter).backward()
        optimizer.zero_grad()
        assert parameter.grad is None
