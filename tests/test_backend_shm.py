"""Tests for the zero-copy shared-memory execution substrate.

Covers the :mod:`repro.backend.shm` pieces in isolation — arena lifecycle
(including the leak guarantees after worker death and parent
KeyboardInterrupt), graph-pair staging/attaching, per-worker caches, BLAS
governance — and the ``process-pool-shm`` executor end to end through
``run_suite``: byte-identical results vs serial, manifest telemetry, and
the cost-model submission ordering.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.backend.shm import (
    BLAS_ENV_VARS,
    SharedArena,
    apply_blas_thread_cap,
    attach_array,
    attach_pair,
    blas_thread_cap,
    cached_attach_pair,
    share_pair,
    shm_worker_init,
    worker_state,
)
from repro.datasets import load_dataset
from repro.runner.executor import (
    _prior_wall_seconds,
    order_longest_first,
    resolve_method,
    run_suite,
)
from repro.runner.spec import JobSpec, SuiteSpec


def _segment_exists(name: str) -> bool:
    """Probe one shared-memory segment by name (Linux: a /dev/shm entry)."""
    shm_root = Path("/dev/shm")
    if shm_root.is_dir():
        return (shm_root / name).exists()
    try:  # pragma: no cover - non-/dev/shm platforms
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def _killer_resolver(name, config):
    """Picklable resolver whose ``Killer`` jobs hard-kill their worker
    mid-attach (the dataset was already attached when align runs)."""
    if name == "Killer":

        class _Killer:
            name = "Killer"
            requires_supervision = False

            def align(self, pair, train_anchors=None):
                os._exit(13)

        return _Killer()
    return resolve_method(name, config)


class TestBlasGovernance:
    def test_fair_share_formula(self):
        assert blas_thread_cap(4, cpus=8) == 2
        assert blas_thread_cap(8, cpus=8) == 1
        assert blas_thread_cap(3, cpus=8) == 2
        # Never below one thread, however oversubscribed.
        assert blas_thread_cap(16, cpus=4) == 1
        assert blas_thread_cap(1, cpus=4) == 4
        # Degenerate worker counts clamp instead of dividing by zero.
        assert blas_thread_cap(0, cpus=4) == 4

    def test_apply_cap_sets_every_env_knob(self, monkeypatch):
        for name in BLAS_ENV_VARS:
            monkeypatch.setenv(name, "sentinel")
        method = apply_blas_thread_cap(3)
        assert method in ("env", "threadpoolctl")
        for name in BLAS_ENV_VARS:
            assert os.environ[name] == "3"

    def test_worker_init_records_cap(self, monkeypatch):
        for name in BLAS_ENV_VARS:
            monkeypatch.setenv(name, "sentinel")
        shm_worker_init(blas_cap=2)
        try:
            state = worker_state()
            assert state.blas_thread_cap == 2
            assert state.blas_cap_method in ("env", "threadpoolctl")
            assert state.dataset_cache == {}
        finally:
            shm_worker_init()  # fresh, cap-less state for later tests
        assert worker_state().blas_thread_cap is None


class TestSharedArena:
    def test_round_trip_and_readonly(self):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        with SharedArena() as arena:
            handle = arena.put(data)
            view = attach_array(handle)
            np.testing.assert_array_equal(view, data)
            assert view.dtype == data.dtype
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 99.0

    def test_keyed_put_dedups_and_refcounts(self):
        data = np.ones(8)
        arena = SharedArena()
        try:
            first = arena.put(data, key="k")
            second = arena.put(data, key="k")
            assert first == second
            assert len(arena.segment_names()) == 1
            # Two references: the first decref keeps the segment alive.
            arena.decref(first)
            assert len(arena.segment_names()) == 1
            assert _segment_exists(first.segment)
            arena.decref(first)
            assert len(arena.segment_names()) == 0
            assert not _segment_exists(first.segment)
        finally:
            arena.destroy()

    def test_destroy_unlinks_every_segment_by_name(self):
        arena = SharedArena()
        handles = [arena.put(np.arange(4, dtype=np.int64)) for _ in range(3)]
        names = arena.segment_names()
        assert len(names) == 3
        assert all(_segment_exists(name) for name in names)
        arena.destroy()
        assert not any(_segment_exists(name) for name in names)
        # Idempotent, and a destroyed arena refuses new work.
        arena.destroy()
        with pytest.raises(RuntimeError):
            arena.put(np.arange(2.0))
        assert handles  # keep the attach handles alive until after destroy

    def test_nbytes_tracks_staged_segments(self):
        with SharedArena() as arena:
            assert arena.nbytes == 0
            arena.put(np.zeros(1000, dtype=np.float64))
            assert arena.nbytes >= 8000

    def test_parent_keyboard_interrupt_leaves_no_orphans(self, tmp_path):
        # An uncaught KeyboardInterrupt still runs atexit hooks — the
        # arena's backstop must unlink its segments on the way down.
        script = tmp_path / "interrupt.py"
        script.write_text(
            textwrap.dedent(
                """
                import numpy as np
                from repro.backend.shm import SharedArena

                arena = SharedArena()
                handle = arena.put(np.arange(64, dtype=np.float64))
                print(handle.segment, flush=True)
                raise KeyboardInterrupt
                """
            )
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        segment_name = proc.stdout.strip().splitlines()[0]
        assert proc.returncode != 0  # the interrupt did terminate it
        assert segment_name.startswith("repro-arena-")
        assert not _segment_exists(segment_name)


class TestPairTransport:
    def test_share_attach_round_trip(self):
        pair = load_dataset("tiny")
        with SharedArena() as arena:
            handle = share_pair(arena, pair)
            attached = attach_pair(handle)
            assert attached.name == pair.name
            assert (attached.source.adjacency != pair.source.adjacency).nnz == 0
            assert (attached.target.adjacency != pair.target.adjacency).nnz == 0
            np.testing.assert_array_equal(
                attached.source.attributes, pair.source.attributes
            )
            np.testing.assert_array_equal(
                attached.ground_truth, pair.ground_truth
            )
            # Zero-copy views are read-only: mutating shared graph data
            # must fail loudly rather than corrupt sibling workers.
            with pytest.raises(ValueError):
                attached.source.adjacency.data[0] = 42.0

    def test_same_pair_stages_once(self):
        pair = load_dataset("tiny")
        with SharedArena() as arena:
            first = share_pair(arena, pair)
            staged = len(arena.segment_names())
            second = share_pair(arena, pair)
            assert second.content_key == first.content_key
            assert len(arena.segment_names()) == staged

    def test_cached_attach_counts_hits(self):
        pair = load_dataset("tiny")
        shm_worker_init()  # clean per-worker cache
        with SharedArena() as arena:
            handle = share_pair(arena, pair)
            first, transport_first = cached_attach_pair(handle)
            second, transport_second = cached_attach_pair(handle)
            assert (transport_first, transport_second) == ("attach", "hit")
            assert first is second
            state = worker_state()
            assert state.dataset_cache_misses == 1
            assert state.dataset_cache_hits == 1
        shm_worker_init()


class TestCostModel:
    def _job(self, method="HTC", scale=None, epochs=None, n_runs=1):
        params = {} if scale is None else {"scale": scale}
        config = {} if epochs is None else {"epochs": epochs}
        return JobSpec.create(
            "econ", method, dataset_params=params, config=config, n_runs=n_runs
        )

    def test_prior_wall_seconds_reads_manifest(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"job_id": "a", "wall_seconds": 4.5},
                        {"job_id": "b", "wall_seconds": 0.0},
                        {"job_id": "c", "wall_seconds": "bogus"},
                    ]
                }
            )
        )
        assert _prior_wall_seconds(manifest) == {"a": 4.5}
        assert _prior_wall_seconds(tmp_path / "missing.json") == {}

    def test_priors_order_longest_first(self):
        fast = self._job(scale=0.1)
        slow = self._job(scale=0.2)
        prior = {fast.job_id: 1.0, slow.job_id: 40.0}
        assert order_longest_first([fast, slow], prior) == [slow, fast]

    def test_heuristic_fallback_orders_by_grid_size(self):
        small = self._job(scale=0.1, epochs=10)
        large = self._job(scale=0.4, epochs=10)
        cheap = self._job(method="Degree", scale=0.4, epochs=10)
        ordered = order_longest_first([cheap, small, large], {})
        assert ordered == [large, small, cheap]

    def test_calibration_puts_heuristics_on_the_prior_axis(self):
        # The recorded 50s job anchors the calibration; the heuristic-only
        # cheap baseline lands well below it on the shared seconds axis.
        htc = self._job(scale=0.1, epochs=10)
        degree = self._job(method="Degree", scale=0.1, epochs=10)
        prior = {htc.job_id: 50.0}
        assert order_longest_first([degree, htc], prior) == [htc, degree]

    def test_ties_keep_submission_order(self):
        first = self._job(scale=0.2, epochs=10)
        second = JobSpec.create(
            "bn", "HTC", dataset_params={"scale": 0.2}, config={"epochs": 10}
        )
        assert order_longest_first([first, second], {}) == [first, second]


def _scrub_timing(value):
    volatile = {"wall_seconds", "time_seconds", "stage_times"}
    if isinstance(value, dict):
        return {
            key: _scrub_timing(inner)
            for key, inner in value.items()
            if key not in volatile
        }
    if isinstance(value, list):
        return [_scrub_timing(inner) for inner in value]
    return value


FAST_CONFIG = {"epochs": 3, "embedding_dim": 8, "orbit_cache": "off"}


class TestProcessPoolShmSuite:
    def _suite(self):
        return SuiteSpec(
            name="shm-e2e",
            datasets=["tiny"],
            methods=["HTC", "Degree"],
            config=dict(FAST_CONFIG),
        )

    def test_bit_identical_to_serial_with_manifest_telemetry(self, tmp_path):
        suite = self._suite()
        serial = run_suite(suite, tmp_path / "serial", executor="serial")
        shm = run_suite(
            suite, tmp_path / "shm", jobs=2, executor="process-pool-shm"
        )
        assert shm.counts == {"done": 2}

        by_id_serial = {a["job_id"]: _scrub_timing(a) for a in serial.artifacts}
        by_id_shm = {a["job_id"]: _scrub_timing(a) for a in shm.artifacts}
        assert by_id_serial == by_id_shm

        manifest = json.loads((shm.suite_dir / "manifest.json").read_text())
        detail = manifest["executor_detail"]
        assert detail == shm.executor_detail
        assert detail["executor"] == "process-pool-shm"
        assert detail["blas_thread_cap"] == blas_thread_cap(2)
        assert detail["datasets_staged"] == 1
        assert detail["shared_bytes"] > 0
        cache = detail["dataset_cache"]
        # Both jobs shipped through the arena: one attach per worker that
        # saw the dataset, hits for every later job in the same worker.
        assert cache["worker_loads"] == 0
        assert cache["attaches"] + cache["hits"] == 2
        # The telemetry stays out of the job specs and artifacts: on-disk
        # payloads are executor-invariant.
        serial_manifest = json.loads(
            (serial.suite_dir / "manifest.json").read_text()
        )
        assert "executor_detail" not in serial_manifest
        for artifact_path in (shm.suite_dir / "jobs").glob("*.json"):
            payload = json.loads(artifact_path.read_text())
            assert "_executor_detail" not in payload
        assert serial.executor_detail is None

    def test_no_segment_leak_after_suite(self, tmp_path):
        before = set(Path("/dev/shm").glob("repro-arena-*"))
        run_suite(
            self._suite(), tmp_path, jobs=2, executor="process-pool-shm"
        )
        after = set(Path("/dev/shm").glob("repro-arena-*"))
        assert after - before == set()

    def test_worker_death_mid_attach_leaves_no_orphans(self, tmp_path):
        # The Killer job os._exits its worker after the dataset attach;
        # the suite must still complete (solo-retry pins the crasher), and
        # only the coordinating arena unlinks — leaving /dev/shm clean.
        suite = SuiteSpec(
            name="shm-crash",
            datasets=["tiny"],
            methods=["Killer", "Degree"],
            config=dict(FAST_CONFIG),
        )
        before = set(Path("/dev/shm").glob("repro-arena-*"))
        report = run_suite(
            suite,
            tmp_path,
            jobs=2,
            executor="process-pool-shm",
            method_resolver=_killer_resolver,
        )
        after = set(Path("/dev/shm").glob("repro-arena-*"))
        assert after - before == set()
        statuses = {
            a["spec"]["method"]: a["status"] for a in report.artifacts
        }
        assert statuses["Degree"] == "done"
        assert statuses["Killer"] == "failed"
        killer = next(
            a for a in report.artifacts if a["spec"]["method"] == "Killer"
        )
        assert "worker crashed" in killer["error"]
