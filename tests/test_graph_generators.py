"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    sbm_graph,
)
from repro.graph.validation import validate_graph


class TestPowerlawClusterGraph:
    def test_size_and_attributes(self):
        graph = powerlaw_cluster_graph(50, 3, n_attributes=5, random_state=0)
        assert graph.n_nodes == 50
        assert graph.n_attributes == 5

    def test_attributes_are_one_hot(self):
        graph = powerlaw_cluster_graph(40, 3, n_attributes=4, random_state=0)
        row_sums = graph.attributes.sum(axis=1)
        np.testing.assert_array_equal(row_sums, np.ones(40))

    def test_deterministic_given_seed(self):
        a = powerlaw_cluster_graph(30, 2, random_state=5)
        b = powerlaw_cluster_graph(30, 2, random_state=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = powerlaw_cluster_graph(30, 2, random_state=1)
        b = powerlaw_cluster_graph(30, 2, random_state=2)
        assert a != b

    def test_average_degree_scales_with_edges_per_node(self):
        sparse = powerlaw_cluster_graph(100, 2, random_state=0)
        dense = powerlaw_cluster_graph(100, 8, random_state=0)
        assert dense.average_degree > sparse.average_degree

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(3, 1)

    def test_valid_graph(self):
        report = validate_graph(powerlaw_cluster_graph(40, 3, random_state=0))
        assert report.valid


class TestErdosRenyi:
    def test_average_degree_close_to_target(self):
        graph = erdos_renyi_graph(300, average_degree=6.0, random_state=0)
        assert 4.0 < graph.average_degree < 8.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(1, 2.0)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 0.0)

    def test_attribute_dimension(self):
        graph = erdos_renyi_graph(30, 3.0, n_attributes=7, random_state=0)
        assert graph.n_attributes == 7


class TestSBM:
    def test_block_structure_denser_inside(self):
        graph = sbm_graph([40, 40], p_in=0.3, p_out=0.01, random_state=0)
        adjacency = graph.adjacency.toarray()
        inside = adjacency[:40, :40].sum() + adjacency[40:, 40:].sum()
        across = adjacency[:40, 40:].sum() * 2
        assert inside > across

    def test_attributes_track_blocks(self):
        graph = sbm_graph([30, 30], p_in=0.2, p_out=0.01, label_fidelity=1.0, random_state=0)
        block0_categories = graph.attributes[:30].argmax(axis=1)
        block1_categories = graph.attributes[30:].argmax(axis=1)
        assert np.all(block0_categories == block0_categories[0])
        assert np.all(block1_categories == block1_categories[0])
        assert block0_categories[0] != block1_categories[0]

    def test_total_size(self):
        graph = sbm_graph([10, 20, 30], p_in=0.3, p_out=0.02, random_state=0)
        assert graph.n_nodes == 60

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            sbm_graph([10, 10], p_in=0.1, p_out=0.5)

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError):
            sbm_graph([], p_in=0.5, p_out=0.1)
