"""Tests for the similarity package: measures, LISI, and matching rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.similarity.lisi import hubness_degrees, lisi_matrix
from repro.similarity.matching import (
    alignment_accuracy,
    greedy_match,
    mutual_nearest_neighbors,
    top_k_indices,
)
from repro.similarity.measures import (
    cosine_similarity,
    euclidean_similarity,
    pearson_similarity,
)

embeddings = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 6), st.just(4)),
    elements=st.floats(min_value=-5.0, max_value=5.0),
)


class TestPearsonSimilarity:
    def test_identical_rows_give_one(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert pearson_similarity(x, x)[0, 0] == pytest.approx(1.0)

    def test_translation_invariance(self):
        x = np.random.default_rng(0).normal(size=(4, 6))
        y = np.random.default_rng(1).normal(size=(5, 6))
        np.testing.assert_allclose(
            pearson_similarity(x, y), pearson_similarity(x + 10.0, y - 3.0), atol=1e-10
        )

    def test_scale_invariance(self):
        x = np.random.default_rng(0).normal(size=(4, 6))
        y = np.random.default_rng(1).normal(size=(5, 6))
        np.testing.assert_allclose(
            pearson_similarity(x, y), pearson_similarity(x * 5.0, y * 0.1), atol=1e-10
        )

    def test_anti_correlated(self):
        x = np.array([[1.0, 2.0, 3.0]])
        y = np.array([[3.0, 2.0, 1.0]])
        assert pearson_similarity(x, y)[0, 0] == pytest.approx(-1.0)

    def test_zero_variance_rows_do_not_produce_nan(self):
        x = np.array([[1.0, 1.0, 1.0]])
        y = np.array([[1.0, 2.0, 3.0]])
        assert np.isfinite(pearson_similarity(x, y)).all()

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            pearson_similarity(np.zeros((2, 3)), np.zeros((2, 4)))

    @given(embeddings, embeddings)
    @settings(max_examples=20, deadline=None)
    def test_values_bounded(self, x, y):
        sim = pearson_similarity(x, y)
        assert (sim <= 1.0).all() and (sim >= -1.0).all()


class TestCosineSimilarity:
    def test_orthogonal_vectors(self):
        x = np.array([[1.0, 0.0]])
        y = np.array([[0.0, 1.0]])
        assert cosine_similarity(x, y)[0, 0] == pytest.approx(0.0)

    def test_zero_rows_do_not_nan(self):
        x = np.zeros((1, 3))
        y = np.ones((1, 3))
        assert np.isfinite(cosine_similarity(x, y)).all()

    def test_shape(self):
        sim = cosine_similarity(np.ones((3, 4)), np.ones((5, 4)))
        assert sim.shape == (3, 5)


class TestEuclideanSimilarity:
    def test_self_similarity_is_zero(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        sim = euclidean_similarity(x, x)
        np.testing.assert_allclose(np.diag(sim), np.zeros(3), atol=1e-10)

    def test_larger_is_closer(self):
        source = np.array([[0.0, 0.0]])
        targets = np.array([[1.0, 0.0], [5.0, 0.0]])
        sim = euclidean_similarity(source, targets)
        assert sim[0, 0] > sim[0, 1]


class TestHubnessAndLISI:
    def test_hubness_shapes(self):
        similarity = np.random.default_rng(0).normal(size=(6, 8))
        source_h, target_h = hubness_degrees(similarity, n_neighbors=3)
        assert source_h.shape == (6,)
        assert target_h.shape == (8,)

    def test_hubness_with_large_m_is_row_mean(self):
        similarity = np.random.default_rng(0).normal(size=(4, 5))
        source_h, target_h = hubness_degrees(similarity, n_neighbors=100)
        np.testing.assert_allclose(source_h, similarity.mean(axis=1))
        np.testing.assert_allclose(target_h, similarity.mean(axis=0))

    def test_hubness_uses_top_entries(self):
        similarity = np.array([[1.0, 0.0, -1.0]])
        source_h, _ = hubness_degrees(similarity, n_neighbors=2)
        assert source_h[0] == pytest.approx(0.5)

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            hubness_degrees(np.zeros((2, 2)), 0)

    def test_lisi_penalises_hubs(self):
        """A target column that is similar to everything (a hub) gets discounted."""
        rng = np.random.default_rng(0)
        source = rng.normal(size=(10, 8))
        target = rng.normal(size=(10, 8))
        # Make target node 0 a hub: very close to the mean of all sources.
        target[0] = source.mean(axis=0) + rng.normal(scale=0.01, size=8)
        raw = pearson_similarity(source, target)
        lisi = lisi_matrix(source, target, n_neighbors=3)
        raw_hub_wins = int((raw.argmax(axis=1) == 0).sum())
        lisi_hub_wins = int((lisi.argmax(axis=1) == 0).sum())
        assert lisi_hub_wins <= raw_hub_wins

    def test_lisi_with_precomputed_similarity(self):
        rng = np.random.default_rng(0)
        source = rng.normal(size=(5, 4))
        target = rng.normal(size=(6, 4))
        similarity = pearson_similarity(source, target)
        a = lisi_matrix(source, target, n_neighbors=2)
        b = lisi_matrix(source, target, n_neighbors=2, similarity=similarity)
        np.testing.assert_allclose(a, b)

    def test_lisi_formula(self):
        rng = np.random.default_rng(3)
        source = rng.normal(size=(4, 5))
        target = rng.normal(size=(6, 5))
        similarity = pearson_similarity(source, target)
        source_h, target_h = hubness_degrees(similarity, 2)
        expected = 2 * similarity - source_h[:, None] - target_h[None, :]
        np.testing.assert_allclose(lisi_matrix(source, target, 2), expected)


class TestMatching:
    def test_mutual_nearest_neighbors_identity(self):
        scores = np.eye(4)
        pairs = mutual_nearest_neighbors(scores)
        assert set(pairs) == {(0, 0), (1, 1), (2, 2), (3, 3)}

    def test_mutual_nearest_neighbors_requires_both_directions(self):
        scores = np.array([[0.9, 0.8], [0.95, 0.1]])
        # Source 0 and 1 both prefer target 0; target 0 prefers source 1.
        pairs = mutual_nearest_neighbors(scores)
        assert (1, 0) in pairs
        assert (0, 0) not in pairs

    def test_mutual_nearest_neighbors_empty(self):
        assert mutual_nearest_neighbors(np.zeros((0, 0))) == []

    def test_greedy_match_one_to_one(self):
        scores = np.random.default_rng(0).normal(size=(5, 7))
        pairs = greedy_match(scores)
        assert len(pairs) == 5
        assert len({i for i, _ in pairs}) == 5
        assert len({j for _, j in pairs}) == 5

    def test_greedy_match_picks_best_first(self):
        scores = np.array([[1.0, 10.0], [5.0, 2.0]])
        pairs = greedy_match(scores)
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_top_k_indices_sorted(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        top = top_k_indices(scores, 3)
        np.testing.assert_array_equal(top[0], [1, 3, 2])

    def test_top_k_clipped_to_width(self):
        scores = np.zeros((2, 3))
        assert top_k_indices(scores, 10).shape == (2, 3)

    def test_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros((2, 2)), 0)

    def test_alignment_accuracy(self):
        scores = np.eye(3)
        assert alignment_accuracy(scores, np.array([0, 1, 2])) == 1.0
        assert alignment_accuracy(scores, np.array([1, 2, 0])) == 0.0

    def test_alignment_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            alignment_accuracy(np.eye(3), np.array([0, 1]))
