"""Tests for stitch conflict resolution, padding, and refinement."""

import numpy as np
import pytest

from repro.datasets.synthetic import tiny_pair
from repro.serve.index import build_index
from repro.shard.partition import ShardPair, ShardPlan, build_shard_plan
from repro.shard.stitch import refine_stitched, stitch_alignments


def _plan_from_pairs(pairs, n_shards=None):
    return ShardPlan(
        pairs=pairs,
        source_partition=None,
        target_partition=None,
        n_shards=n_shards if n_shards is not None else len(pairs),
        overlap=1,
        seed=0,
    )


def _shard(index, source_nodes, target_nodes):
    source_nodes = np.asarray(source_nodes, dtype=np.int64)
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    return ShardPair(
        index=index,
        source_shard=index,
        target_shard=index,
        source_core=source_nodes,
        target_core=target_nodes,
        source_nodes=source_nodes,
        target_nodes=target_nodes,
    )


class TestSingleShardParity:
    def test_one_full_shard_equals_dense_index(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((12, 9))
        plan = _plan_from_pairs([_shard(0, np.arange(12), np.arange(9))])
        stitched = stitch_alignments(plan, [matrix], 12, 9, k=4)
        dense = build_index(matrix, k=4)
        assert np.array_equal(stitched.index.indices, dense.indices)
        assert np.array_equal(stitched.index.scores, dense.scores)
        assert np.array_equal(stitched.index.reverse_indices, dense.reverse_indices)

    def test_tied_scores_resolve_to_lowest_column(self):
        matrix = np.zeros((2, 5))  # every score ties
        plan = _plan_from_pairs([_shard(0, np.arange(2), np.arange(5))])
        stitched = stitch_alignments(plan, [matrix], 2, 5, k=3)
        assert np.array_equal(
            stitched.index.indices, np.array([[0, 1, 2], [0, 1, 2]])
        )


class TestConflictResolution:
    def test_overlapping_boundary_keeps_best_score(self):
        """Node 1 is in both shards; its scores disagree — best wins."""
        shard_a = _shard(0, [0, 1], [0, 1])
        shard_b = _shard(1, [1, 2], [1, 2])
        matrix_a = np.array([[0.9, 0.1], [0.2, 0.8]])
        matrix_b = np.array([[0.5, 0.3], [0.1, 0.7]])
        plan = _plan_from_pairs([shard_a, shard_b])
        stitched = stitch_alignments(plan, [matrix_a, matrix_b], 3, 3, k=2)
        # source 1: candidates {t1: max(0.8, 0.5), t0: 0.2, t2: 0.3}
        assert stitched.index.match([1])[0] == 1
        assert stitched.index.scores[1, 0] == pytest.approx(0.8)
        assert stitched.conflicts_resolved == 1  # (1, t1) scored twice
        assert stitched.multi_shard_sources == 1

    def test_tied_duplicate_resolves_to_lowest_shard(self):
        """Same (source, target) score from two shards: lowest shard wins
        (pure bookkeeping — the kept score value is identical)."""
        shard_a = _shard(0, [0], [0, 1])
        shard_b = _shard(1, [0], [0, 1])
        matrix = np.array([[0.5, 0.25]])
        plan = _plan_from_pairs([shard_a, shard_b])
        stitched = stitch_alignments(plan, [matrix, matrix.copy()], 1, 2, k=2)
        assert stitched.conflicts_resolved == 2
        assert np.array_equal(stitched.index.indices[0], [0, 1])
        assert stitched.index.scores[0, 0] == pytest.approx(0.5)

    def test_cross_shard_tie_breaks_by_lower_target_index(self):
        """Equal scores for different targets order by global target id,
        regardless of which shard produced which."""
        shard_a = _shard(0, [0], [2])  # offers target 2 at 0.5
        shard_b = _shard(1, [0], [1])  # offers target 1 at 0.5
        plan = _plan_from_pairs([shard_a, shard_b])
        stitched = stitch_alignments(
            plan, [np.array([[0.5]]), np.array([[0.5]])], 1, 3, k=2
        )
        assert np.array_equal(stitched.index.indices[0], [1, 2])


class TestPadding:
    def test_rows_without_candidates_are_minus_one(self):
        """Source 2 is in no shard: padded row, match returns -1."""
        plan = _plan_from_pairs([_shard(0, [0, 1], [0, 1])])
        matrix = np.array([[0.4, 0.6], [0.7, 0.3]])
        stitched = stitch_alignments(plan, [matrix], 3, 2, k=2)
        assert np.array_equal(stitched.index.indices[2], [-1, -1])
        assert np.all(np.isneginf(stitched.index.scores[2]))

    def test_small_shard_pads_width(self):
        """A shard with fewer targets than k pads the remaining slots."""
        plan = _plan_from_pairs([_shard(0, [0], [1])])
        stitched = stitch_alignments(plan, [np.array([[0.9]])], 1, 5, k=3)
        assert np.array_equal(stitched.index.indices[0], [1, -1, -1])


class TestStitchedAlignment:
    @pytest.fixture(scope="class")
    def stitched(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((10, 10))
        plan = _plan_from_pairs([_shard(0, np.arange(10), np.arange(10))])
        return stitch_alignments(plan, [matrix], 10, 10, k=4), matrix

    def test_to_result_argmax_matches_index(self, stitched):
        alignment, _ = stitched
        result = alignment.to_result()
        assert np.array_equal(
            result.alignment_matrix.argmax(axis=1),
            alignment.match(np.arange(10)),
        )

    def test_to_result_fill_below_all_candidates(self, stitched):
        alignment, matrix = stitched
        dense = alignment.to_result().alignment_matrix
        stored = alignment.index.scores[np.isfinite(alignment.index.scores)]
        assert dense.min() < stored.min()

    def test_shape_and_repr(self, stitched):
        alignment, _ = stitched
        assert alignment.shape == (10, 10)
        assert "shards=1" in repr(alignment)

    def test_matrix_shape_mismatch_raises(self):
        plan = _plan_from_pairs([_shard(0, [0, 1], [0, 1])])
        with pytest.raises(ValueError, match="does not match"):
            stitch_alignments(plan, [np.zeros((3, 2))], 2, 2)

    def test_matrix_count_mismatch_raises(self):
        plan = _plan_from_pairs([_shard(0, [0], [0])])
        with pytest.raises(ValueError, match="matrices"):
            stitch_alignments(plan, [], 1, 1)


class TestReverseOnlyCandidates:
    """Pairs stored only in the reverse index must survive refinement and
    densification (regression tests)."""

    @pytest.fixture(scope="class")
    def reverse_only_setup(self):
        # k=1 forward: s0->t0, s1->t0, s2->t2.  reverse_k=2 keeps (0, t1)
        # at 0.8 — a reverse-only pair (t1 ranks s0 highly, but s0's own
        # top-1 is t0).
        matrix = np.array(
            [
                [0.9, 0.8, 0.1],
                [0.85, 0.2, 0.1],
                [0.1, 0.1, 0.5],
            ]
        )
        plan = _plan_from_pairs([_shard(0, np.arange(3), np.arange(3))])
        stitched = stitch_alignments(plan, [matrix], 3, 3, k=1, reverse_k=2)
        assert stitched.index.reverse_indices[1, 0] == 0  # reverse-only pair
        assert not np.any(stitched.index.indices[0] == 1)
        return stitched

    def test_refinement_keeps_reverse_only_pairs(self, reverse_only_setup):
        from repro.graph.builders import from_edge_list

        graph = from_edge_list([(0, 1), (1, 2)], n_nodes=3)
        refined = refine_stitched(
            reverse_only_setup, graph, graph, iterations=1, alpha=0.0
        )
        # alpha=0 leaves scores untouched; the rebuild must not drop the
        # reverse-only candidate (0, t1).
        assert refined.index.reverse_indices[1, 0] == 0
        assert refined.index.reverse_scores[1, 0] == pytest.approx(0.8)

    def test_to_result_fill_covers_reverse_only_scores(self, reverse_only_setup):
        dense = reverse_only_setup.to_result().alignment_matrix
        assert dense[0, 1] == pytest.approx(0.8)
        stored = np.concatenate(
            [
                reverse_only_setup.index.scores.ravel(),
                reverse_only_setup.index.reverse_scores.ravel(),
            ]
        )
        fill = dense.min()
        assert fill < stored[np.isfinite(stored)].min()


class TestRefinement:
    def test_zero_iterations_is_identity(self):
        pair = tiny_pair(n_nodes=40, random_state=0)
        plan = build_shard_plan(pair, 2, overlap=1, seed=0)
        matrices = [
            np.random.default_rng(i).standard_normal(
                (p.source_nodes.size, p.target_nodes.size)
            )
            for i, p in enumerate(plan.pairs)
        ]
        stitched = stitch_alignments(
            plan, matrices, pair.source.n_nodes, pair.target.n_nodes
        )
        refined = refine_stitched(
            stitched, pair.source, pair.target, iterations=0
        )
        assert np.array_equal(refined.index.indices, stitched.index.indices)
        assert np.array_equal(refined.index.scores, stitched.index.scores)

    def test_refinement_promotes_seed_consistent_candidates(self):
        """Two isomorphic triangles plus a tie: the seed-consistency bonus
        must break the tie towards the structure-preserving match."""
        from repro.graph.builders import from_edge_list

        graph = from_edge_list([(0, 1), (1, 2), (0, 2)], n_nodes=4)
        plan = _plan_from_pairs([_shard(0, np.arange(4), np.arange(4))])
        # Node 2 ties between targets 2 and 3; 0<->0 and 1<->1 are mutual
        # seeds and both neighbour target 2, so refinement must pick 2.
        matrix = np.array(
            [
                [0.9, 0.1, 0.1, 0.1],
                [0.1, 0.9, 0.1, 0.1],
                [0.1, 0.1, 0.5, 0.5],
                [0.1, 0.1, 0.1, 0.2],
            ]
        )
        stitched = stitch_alignments(plan, [matrix], 4, 4, k=4)
        assert stitched.match([2])[0] == 2  # tie broken by lowest index
        refined = refine_stitched(stitched, graph, graph, iterations=1)
        assert refined.match([2])[0] == 2
        assert refined.index.scores[2, 0] > refined.index.scores[2, 1]

    def test_rejects_bad_parameters(self):
        pair = tiny_pair(n_nodes=20, random_state=0)
        plan = _plan_from_pairs(
            [_shard(0, np.arange(20), np.arange(pair.target.n_nodes))]
        )
        matrix = np.zeros((20, pair.target.n_nodes))
        stitched = stitch_alignments(
            plan, [matrix], 20, pair.target.n_nodes
        )
        with pytest.raises(ValueError, match="iterations"):
            refine_stitched(stitched, pair.source, pair.target, iterations=-1)
        with pytest.raises(ValueError, match="alpha"):
            refine_stitched(stitched, pair.source, pair.target, alpha=-0.1)
