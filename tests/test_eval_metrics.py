"""Tests for precision@q and MRR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    evaluate_alignment,
    mean_reciprocal_rank,
    precision_at_q,
)


class TestPrecisionAtQ:
    def test_perfect_alignment(self):
        scores = np.eye(5)
        truth = np.arange(5)
        assert precision_at_q(scores, truth, 1) == 1.0

    def test_completely_wrong(self):
        scores = np.eye(3)
        truth = np.array([1, 2, 0])
        assert precision_at_q(scores, truth, 1) == 0.0

    def test_partial(self):
        scores = np.eye(4)
        truth = np.array([0, 1, 3, 2])
        assert precision_at_q(scores, truth, 1) == 0.5

    def test_larger_q_recovers_misses(self):
        scores = np.array([[0.9, 0.8, 0.1], [0.3, 0.2, 0.9], [0.5, 0.6, 0.4]])
        truth = np.array([1, 0, 1])
        assert precision_at_q(scores, truth, 1) < 1.0
        assert precision_at_q(scores, truth, 3) == 1.0

    def test_unmatched_nodes_skipped(self):
        scores = np.eye(4)
        truth = np.array([0, -1, -1, 3])
        assert precision_at_q(scores, truth, 1) == 1.0

    def test_all_unmatched_returns_zero(self):
        assert precision_at_q(np.eye(3), np.full(3, -1), 1) == 0.0

    def test_q_clipped_to_targets(self):
        scores = np.ones((2, 3))
        truth = np.array([0, 1])
        assert precision_at_q(scores, truth, 100) == 1.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            precision_at_q(np.eye(2), np.arange(2), 0)

    def test_bad_ground_truth_shape(self):
        with pytest.raises(ValueError):
            precision_at_q(np.eye(3), np.arange(2))

    def test_ground_truth_out_of_range(self):
        with pytest.raises(ValueError):
            precision_at_q(np.eye(3), np.array([0, 1, 5]))

    def test_monotone_in_q(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(20, 20))
        truth = rng.permutation(20)
        values = [precision_at_q(scores, truth, q) for q in (1, 3, 5, 10, 20)]
        assert values == sorted(values)


class TestMRR:
    def test_perfect(self):
        assert mean_reciprocal_rank(np.eye(4), np.arange(4)) == 1.0

    def test_rank_two_everywhere(self):
        scores = np.array([[0.5, 1.0], [1.0, 0.5]])
        truth = np.array([0, 1])
        assert mean_reciprocal_rank(scores, truth) == pytest.approx(0.5)

    def test_ties_use_mid_rank(self):
        scores = np.ones((1, 5))
        truth = np.array([2])
        # All five candidates tie: mid-rank = 1 + 0 + 4/2 = 3.
        assert mean_reciprocal_rank(scores, truth) == pytest.approx(1.0 / 3.0)

    def test_unmatched_skipped(self):
        scores = np.eye(3)
        truth = np.array([0, -1, 2])
        assert mean_reciprocal_rank(scores, truth) == 1.0

    def test_mrr_at_least_inverse_of_worst_rank(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=(10, 15))
        truth = rng.permutation(15)[:10]
        assert mean_reciprocal_rank(scores, truth) >= 1.0 / 15.0

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_mrr_bounded(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(8, 12))
        truth = rng.permutation(12)[:8]
        value = mean_reciprocal_rank(scores, truth)
        assert 0.0 < value <= 1.0

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_mrr_upper_bounds_p1(self, seed):
        """MRR >= p@1 always (each anchor contributes 1/rank >= indicator)."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(8, 12))
        truth = rng.permutation(12)[:8]
        assert mean_reciprocal_rank(scores, truth) >= precision_at_q(scores, truth, 1) - 1e-12


class TestEvaluateAlignment:
    def test_contains_requested_metrics(self):
        scores = np.eye(4)
        metrics = evaluate_alignment(scores, np.arange(4), precision_ks=(1, 2, 3))
        assert set(metrics) == {"p@1", "p@2", "p@3", "MRR"}

    def test_default_keys(self):
        metrics = evaluate_alignment(np.eye(4), np.arange(4))
        assert set(metrics) == {"p@1", "p@10", "MRR"}
