"""Tests for the internal building blocks of the baseline aligners."""

import numpy as np
import pytest

from repro.baselines.cenalp import CENALP
from repro.baselines.galign import GAlign
from repro.baselines.regal import REGAL
from repro.datasets.synthetic import tiny_pair
from repro.graph.builders import from_edge_list
from repro.graph.generators import powerlaw_cluster_graph


class TestREGALInternals:
    def test_structural_identity_shape(self):
        graph = powerlaw_cluster_graph(30, 3, random_state=0)
        identity = REGAL()._structural_identity(graph)
        assert identity.shape[0] == 30
        assert identity.shape[1] >= 1
        assert (identity >= 0).all()

    def test_identity_reflects_degree(self):
        """A hub accumulates more neighbourhood mass than a leaf."""
        star = from_edge_list([(0, 1), (0, 2), (0, 3), (0, 4)], n_nodes=5)
        identity = REGAL()._structural_identity(star)
        assert identity[0].sum() > identity[1].sum()

    def test_hop_discount_reduces_far_contributions(self):
        path = from_edge_list([(0, 1), (1, 2), (2, 3)], n_nodes=4)
        strong = REGAL(hop_discount=1.0)._structural_identity(path)
        weak = REGAL(hop_discount=0.1)._structural_identity(path)
        assert weak[0].sum() < strong[0].sum()

    def test_pad_columns(self):
        a = np.ones((2, 3))
        b = np.ones((2, 5))
        padded = REGAL._pad_columns([a, b])
        assert padded[0].shape == (2, 5)
        assert padded[1].shape == (2, 5)
        np.testing.assert_array_equal(padded[0][:, 3:], np.zeros((2, 2)))

    def test_combined_similarity_in_unit_interval(self):
        rng = np.random.default_rng(0)
        regal = REGAL()
        sim = regal._combined_similarity(
            rng.random((4, 3)), rng.random((5, 3)), rng.random((4, 2)), rng.random((5, 2))
        )
        assert (sim > 0).all()
        assert (sim <= 1.0 + 1e-12).all()


class TestCENALPInternals:
    def test_mapping_fits_anchors(self):
        rng = np.random.default_rng(0)
        source = rng.normal(size=(20, 6))
        true_map = rng.normal(size=(6, 6))
        target = source @ true_map
        anchors = [(i, i) for i in range(20)]
        cenalp = CENALP(ridge=1e-6)
        learned = cenalp._fit_mapping(source, target, anchors)
        np.testing.assert_allclose(source @ learned, target, atol=1e-6)

    def test_growth_adds_new_anchors(self):
        pair = tiny_pair(n_nodes=40, random_state=0, noise=0.02)
        cenalp = CENALP(embedding_dim=16, n_rounds=3, growth_per_round=5)
        seed_anchors = pair.anchor_links[:4]
        scores = cenalp.align(pair, train_anchors=list(seed_anchors))
        assert scores.shape == (40, 40)

    def test_unsupervised_seeding_falls_back_to_attributes(self):
        pair = tiny_pair(n_nodes=30, random_state=1, noise=0.02)
        scores = CENALP(embedding_dim=16, n_rounds=2).align(pair, train_anchors=None)
        assert np.isfinite(scores).all()


class TestGAlignInternals:
    def test_views_include_augmentation(self):
        pair = tiny_pair(n_nodes=25, random_state=0)
        galign = GAlign(augment_ratio=0.2, random_state=0)
        views = galign._views(pair.source, np.random.default_rng(0))
        assert len(views) == 2

    def test_augmentation_disabled(self):
        pair = tiny_pair(n_nodes=25, random_state=0)
        galign = GAlign(augment_ratio=0.0, random_state=0)
        views = galign._views(pair.source, np.random.default_rng(0))
        assert len(views) == 1

    def test_attribute_mismatch_rejected(self):
        pair = tiny_pair(n_nodes=20, random_state=0)
        bad_target = pair.target.with_attributes(
            np.ones((pair.target.n_nodes, pair.source.n_attributes + 1))
        )
        from repro.datasets.pair import GraphPair

        bad_pair = GraphPair(
            source=pair.source,
            target=bad_target,
            ground_truth=pair.ground_truth,
            name="bad",
        )
        with pytest.raises(ValueError):
            GAlign(epochs=1).align(bad_pair)
