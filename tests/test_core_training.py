"""Tests for multi-orbit-aware training, including the paper's theory checks.

The Lemma 1 / Proposition 1 tests verify the core theoretical claim: if two
nodes' neighbourhoods satisfy attribute consistency and k-order topological
consistency, the shared orbit-weighted encoder maps them to identical
embeddings.
"""

import numpy as np
import pytest

from repro.core.config import HTCConfig
from repro.core.encoder import build_topology_views, make_encoder
from repro.core.training import MultiOrbitTrainer, reconstruction_loss
from repro.datasets.synthetic import tiny_pair
from repro.graph.builders import from_edge_list
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.perturbation import permute_graph
from repro.nn.layers import SharedGCNEncoder


class TestReconstructionLoss:
    def test_positive_scalar(self):
        graph = powerlaw_cluster_graph(20, 2, n_attributes=3, random_state=0)
        config = HTCConfig(orbits=[0], embedding_dim=8)
        views = build_topology_views(graph, config)
        encoder = make_encoder(3, config)
        loss = reconstruction_loss(
            encoder, views[0], graph.attributes, np.asarray(views[0].todense())
        )
        assert loss.data.size == 1
        assert loss.item() > 0


class TestMultiOrbitTrainer:
    def test_loss_decreases(self):
        pair = tiny_pair(n_nodes=30, random_state=0)
        config = HTCConfig(orbits=[0, 1], embedding_dim=8, epochs=30, random_state=0)
        source_views = build_topology_views(pair.source, config)
        target_views = build_topology_views(pair.target, config)
        encoder = make_encoder(pair.source.n_attributes, config)
        losses = MultiOrbitTrainer(config).train(
            encoder,
            source_views,
            target_views,
            pair.source.attributes,
            pair.target.attributes,
        )
        assert len(losses) == 30
        assert losses[-1] < losses[0]

    def test_view_mismatch_rejected(self):
        pair = tiny_pair(n_nodes=20, random_state=0)
        config = HTCConfig(orbits=[0, 1], embedding_dim=4, epochs=2)
        source_views = build_topology_views(pair.source, config)
        target_views = build_topology_views(pair.target, config.updated(orbits=[0]))
        encoder = make_encoder(pair.source.n_attributes, config)
        with pytest.raises(ValueError):
            MultiOrbitTrainer(config).train(
                encoder,
                source_views,
                target_views,
                pair.source.attributes,
                pair.target.attributes,
            )

    def test_training_changes_parameters(self):
        pair = tiny_pair(n_nodes=25, random_state=1)
        config = HTCConfig(orbits=[0], embedding_dim=8, epochs=5, random_state=0)
        source_views = build_topology_views(pair.source, config)
        target_views = build_topology_views(pair.target, config)
        encoder = make_encoder(pair.source.n_attributes, config)
        before = encoder.state_dict()
        MultiOrbitTrainer(config).train(
            encoder,
            source_views,
            target_views,
            pair.source.attributes,
            pair.target.attributes,
        )
        after = encoder.state_dict()
        assert any(
            not np.array_equal(before[name], after[name]) for name in before
        )


class TestTheory:
    """Lemma 1 and Proposition 1: consistency implies identical embeddings."""

    def test_lemma1_symmetric_nodes_same_graph(self):
        """Nodes 1 and 2 of a star have matching neighbourhoods, hence equal
        embeddings after one orbit-weighted layer."""
        graph = from_edge_list(
            [(0, 1), (0, 2), (0, 3)],
            n_nodes=4,
            attributes=np.array([[1.0, 0.0]] * 4),
        )
        config = HTCConfig(orbits=[0, 1, 5], embedding_dim=6, random_state=0)
        views = build_topology_views(graph, config)
        encoder = make_encoder(2, config)
        for view in views.values():
            embedding = encoder(view, graph.attributes).numpy()
            np.testing.assert_allclose(embedding[1], embedding[2], atol=1e-10)
            np.testing.assert_allclose(embedding[1], embedding[3], atol=1e-10)

    def test_proposition1_isomorphic_graphs_get_identical_anchor_embeddings(self):
        """A permuted copy satisfies every consistency exactly, so anchor nodes
        must receive identical embeddings from the shared encoder."""
        source = powerlaw_cluster_graph(25, 3, n_attributes=5, random_state=0)
        target, mapping = permute_graph(source, random_state=1)

        config = HTCConfig(orbits=[0, 1, 2, 3], embedding_dim=8, random_state=0)
        source_views = build_topology_views(source, config)
        target_views = build_topology_views(target, config)
        encoder = make_encoder(5, config)

        for orbit in config.resolved_orbits:
            source_embedding = encoder(source_views[orbit], source.attributes).numpy()
            target_embedding = encoder(target_views[orbit], target.attributes).numpy()
            np.testing.assert_allclose(
                source_embedding, target_embedding[mapping], atol=1e-8
            )

    def test_proposition1_holds_after_training(self):
        """Sharing parameters keeps the anchor-embedding identity through training."""
        source = powerlaw_cluster_graph(20, 3, n_attributes=4, random_state=2)
        target, mapping = permute_graph(source, random_state=3)
        config = HTCConfig(orbits=[0, 1], embedding_dim=6, epochs=10, random_state=0)
        source_views = build_topology_views(source, config)
        target_views = build_topology_views(target, config)
        encoder = make_encoder(4, config)
        MultiOrbitTrainer(config).train(
            encoder, source_views, target_views, source.attributes, target.attributes
        )
        for orbit in config.resolved_orbits:
            source_embedding = encoder(source_views[orbit], source.attributes).numpy()
            target_embedding = encoder(target_views[orbit], target.attributes).numpy()
            np.testing.assert_allclose(
                source_embedding, target_embedding[mapping], atol=1e-8
            )

    def test_unshared_encoders_break_the_identity(self):
        """Without parameter sharing the identity generally fails — the reason
        the paper shares the encoder."""
        source = powerlaw_cluster_graph(20, 3, n_attributes=4, random_state=2)
        target, mapping = permute_graph(source, random_state=3)
        config = HTCConfig(orbits=[0], embedding_dim=6, random_state=0)
        source_views = build_topology_views(source, config)
        target_views = build_topology_views(target, config)
        encoder_a = SharedGCNEncoder(4, [6, 6], random_state=0)
        encoder_b = SharedGCNEncoder(4, [6, 6], random_state=99)
        source_embedding = encoder_a(source_views[0], source.attributes).numpy()
        target_embedding = encoder_b(target_views[0], target.attributes).numpy()
        assert not np.allclose(source_embedding, target_embedding[mapping], atol=1e-3)
