"""Shared test helpers.

``tests/`` is intentionally not a package (pytest rootdir-based collection
inserts this directory onto ``sys.path``), so helper code shared between test
modules lives here and is imported absolutely: ``from _helpers import ...``.
"""

from __future__ import annotations

import numpy as np


def numerical_gradient(func, value, epsilon=1e-6):
    """Central-difference gradient of a scalar-valued function of an array."""
    value = np.asarray(value, dtype=np.float64)
    gradient = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = gradient.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func(value)
        flat[index] = original - epsilon
        minus = func(value)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return gradient
