"""End-to-end integration tests reproducing the paper's qualitative claims
at miniature scale.

These are the "does the whole system tell the same story as the paper" tests:
on a dense, motif-rich pair (the Allmovie–Imdb stand-in) HTC beats its
low-order and diffusion ablations, the trusted-pair refinement helps, and the
public API round-trips through the packaged datasets.
"""

import pytest

from repro import (
    ABLATION_VARIANTS,
    HTCAligner,
    HTCConfig,
    evaluate_alignment,
    load_dataset,
    make_variant,
)
from repro.baselines import GAlign, IsoRank
from repro.eval.protocol import run_method
from repro.viz.embedding_stats import anchor_overlap_statistics


@pytest.fixture(scope="module")
def dense_pair():
    """A small but dense, motif-rich pair (Allmovie–Imdb stand-in)."""
    return load_dataset("allmovie_imdb", scale=0.3, random_state=0)


@pytest.fixture(scope="module")
def shared_config():
    return HTCConfig(epochs=40, embedding_dim=32, n_neighbors=10, random_state=0)


@pytest.fixture(scope="module")
def variant_scores(dense_pair, shared_config):
    """p@1 of every Table III variant on the dense pair."""
    scores = {}
    for name in ABLATION_VARIANTS:
        aligner = make_variant(name, shared_config)
        matrix = aligner.align(dense_pair).alignment_matrix
        scores[name] = evaluate_alignment(matrix, dense_pair.ground_truth)["p@1"]
    return scores


class TestPaperClaims:
    def test_htc_beats_low_order_variant(self, variant_scores):
        """Table III: the full model clearly outperforms HTC-L."""
        assert variant_scores["HTC"] > variant_scores["HTC-L"] + 0.1

    def test_higher_order_training_helps(self, variant_scores):
        """HTC-H (multi-orbit, no fine-tuning) > HTC-L (low-order)."""
        assert variant_scores["HTC-H"] > variant_scores["HTC-L"]

    def test_fine_tuning_helps_on_top_of_orbits(self, variant_scores):
        """HTC (with fine-tuning) >= HTC-H (without)."""
        assert variant_scores["HTC"] >= variant_scores["HTC-H"]

    def test_orbits_beat_diffusion(self, variant_scores):
        """Table III: GOMs outperform diffusion matrices (HTC > HTC-DT)."""
        assert variant_scores["HTC"] > variant_scores["HTC-DT"]

    def test_full_model_is_best(self, variant_scores):
        assert variant_scores["HTC"] == max(variant_scores.values())

    def test_htc_competitive_with_galign(self, dense_pair, shared_config):
        """Table II ordering: HTC >= GAlign (within a small tolerance)."""
        htc = run_method(HTCAligner(shared_config), dense_pair, random_state=0)
        galign = run_method(
            GAlign(embedding_dim=32, epochs=40, random_state=0),
            dense_pair,
            random_state=0,
        )
        assert htc.metrics["p@1"] >= galign.metrics["p@1"] - 0.05

    def test_htc_beats_supervised_isorank(self, dense_pair, shared_config):
        htc = run_method(HTCAligner(shared_config), dense_pair, random_state=0)
        isorank = run_method(IsoRank(n_iterations=20), dense_pair, random_state=0)
        assert htc.metrics["p@1"] > isorank.metrics["p@1"]

    def test_alignment_improves_embedding_overlap(self, dense_pair, shared_config):
        """Fig. 11's claim, checked numerically: after HTC, matched anchors are
        much closer to each other than random cross-graph pairs."""
        result = HTCAligner(shared_config).align(dense_pair)
        orbit = max(result.orbit_importance, key=result.orbit_importance.get)
        stats = anchor_overlap_statistics(
            result.source_embeddings[orbit],
            result.target_embeddings[orbit],
            dense_pair.anchor_links,
            random_state=0,
        )
        assert stats["overlap_ratio"] > 1.5

    def test_orbit_importance_spreads_beyond_orbit_zero(self, dense_pair, shared_config):
        """Fig. 6's claim: on dense graphs, higher-order orbits carry a large
        share of the importance mass (orbit 0 is not dominant)."""
        result = HTCAligner(shared_config).align(dense_pair)
        higher_order_mass = sum(
            gamma for orbit, gamma in result.orbit_importance.items() if orbit != 0
        )
        assert higher_order_mass > 0.5


class TestPublicAPI:
    def test_readme_quickstart_flow(self):
        pair = load_dataset("tiny", n_nodes=30, random_state=0)
        config = HTCConfig(epochs=10, embedding_dim=8, orbits=range(3), n_neighbors=5)
        result = HTCAligner(config).align(pair)
        metrics = evaluate_alignment(result.alignment_matrix, pair.ground_truth)
        assert metrics["p@1"] > 0.3

    def test_all_registered_datasets_instantiate_small(self):
        for name in ("allmovie_imdb", "douban", "flickr_myspace"):
            pair = load_dataset(name, scale=0.25, random_state=0)
            assert pair.source.n_nodes > 0
            assert pair.source.n_attributes == pair.target.n_attributes

    def test_robustness_datasets_expose_noise_parameter(self):
        low = load_dataset("econ", edge_removal_ratio=0.1, scale=0.25)
        high = load_dataset("econ", edge_removal_ratio=0.5, scale=0.25)
        assert high.target.n_edges < low.target.n_edges


class TestNoiseMonotonicity:
    def test_htc_degrades_gracefully_with_noise(self):
        """Fig. 9's qualitative shape: accuracy at 40% noise is lower than at
        5% noise, but far above random."""
        config = HTCConfig(
            epochs=15, embedding_dim=16, orbits=range(4), n_neighbors=5, random_state=0
        )
        metrics = {}
        for noise in (0.05, 0.4):
            pair = load_dataset("tiny", n_nodes=45, random_state=5, noise=noise)
            result = HTCAligner(config).align(pair)
            metrics[noise] = evaluate_alignment(
                result.alignment_matrix, pair.ground_truth
            )["p@1"]
        assert metrics[0.05] >= metrics[0.4]
        assert metrics[0.4] > 1.0 / 45
