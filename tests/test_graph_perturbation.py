"""Tests for repro.graph.perturbation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.perturbation import (
    add_attribute_noise,
    make_noisy_copy,
    permute_graph,
    remove_edges,
)


@pytest.fixture(scope="module")
def base_graph():
    return powerlaw_cluster_graph(50, 3, random_state=0)


class TestRemoveEdges:
    def test_removes_requested_fraction(self, base_graph):
        reduced = remove_edges(base_graph, 0.2, random_state=0)
        expected = base_graph.n_edges - int(round(0.2 * base_graph.n_edges))
        assert reduced.n_edges == expected

    def test_zero_ratio_is_copy(self, base_graph):
        unchanged = remove_edges(base_graph, 0.0, random_state=0)
        assert unchanged.n_edges == base_graph.n_edges

    def test_node_count_preserved(self, base_graph):
        reduced = remove_edges(base_graph, 0.5, random_state=0)
        assert reduced.n_nodes == base_graph.n_nodes

    def test_attributes_preserved(self, base_graph):
        reduced = remove_edges(base_graph, 0.3, random_state=0)
        np.testing.assert_array_equal(reduced.attributes, base_graph.attributes)

    def test_invalid_ratio_raises(self, base_graph):
        with pytest.raises(ValueError):
            remove_edges(base_graph, 1.0)
        with pytest.raises(ValueError):
            remove_edges(base_graph, -0.1)

    def test_removed_edges_are_subset(self, base_graph):
        reduced = remove_edges(base_graph, 0.4, random_state=1)
        original_edges = set(base_graph.edge_list())
        assert set(reduced.edge_list()) <= original_edges

    def test_deterministic_given_seed(self, base_graph):
        a = remove_edges(base_graph, 0.3, random_state=7)
        b = remove_edges(base_graph, 0.3, random_state=7)
        assert a.edge_list() == b.edge_list()


class TestPermuteGraph:
    def test_preserves_edge_count(self, base_graph):
        permuted, _ = permute_graph(base_graph, random_state=0)
        assert permuted.n_edges == base_graph.n_edges

    def test_permutation_maps_edges(self, base_graph):
        permuted, mapping = permute_graph(base_graph, random_state=0)
        for u, v in base_graph.edge_list():
            assert permuted.has_edge(int(mapping[u]), int(mapping[v]))

    def test_permutation_maps_attributes(self, base_graph):
        permuted, mapping = permute_graph(base_graph, random_state=0)
        for node in range(base_graph.n_nodes):
            np.testing.assert_array_equal(
                permuted.attributes[mapping[node]], base_graph.attributes[node]
            )

    def test_mapping_is_a_permutation(self, base_graph):
        _, mapping = permute_graph(base_graph, random_state=3)
        assert sorted(mapping.tolist()) == list(range(base_graph.n_nodes))

    def test_degree_multiset_preserved(self, base_graph):
        permuted, _ = permute_graph(base_graph, random_state=5)
        assert sorted(permuted.degrees) == sorted(base_graph.degrees)


class TestAttributeNoise:
    def test_flip_changes_some_entries(self, base_graph):
        noisy = add_attribute_noise(base_graph, flip_ratio=0.5, random_state=0)
        assert not np.array_equal(noisy.attributes, base_graph.attributes)

    def test_no_noise_is_identity(self, base_graph):
        clean = add_attribute_noise(base_graph, flip_ratio=0.0, random_state=0)
        np.testing.assert_array_equal(clean.attributes, base_graph.attributes)

    def test_gaussian_noise_changes_values(self, base_graph):
        noisy = add_attribute_noise(base_graph, gaussian_sigma=0.1, random_state=0)
        assert not np.array_equal(noisy.attributes, base_graph.attributes)

    def test_structure_untouched(self, base_graph):
        noisy = add_attribute_noise(base_graph, flip_ratio=0.3, random_state=0)
        assert noisy.edge_list() == base_graph.edge_list()

    def test_invalid_parameters_raise(self, base_graph):
        with pytest.raises(ValueError):
            add_attribute_noise(base_graph, flip_ratio=1.5)
        with pytest.raises(ValueError):
            add_attribute_noise(base_graph, gaussian_sigma=-1.0)

    def test_flip_preserves_value_domain(self, base_graph):
        noisy = add_attribute_noise(base_graph, flip_ratio=0.8, random_state=0)
        original_values = set(np.unique(base_graph.attributes))
        assert set(np.unique(noisy.attributes)) <= original_values


class TestMakeNoisyCopy:
    def test_mapping_has_graph_size(self, base_graph):
        noisy, mapping = make_noisy_copy(base_graph, 0.1, random_state=0)
        assert mapping.shape == (base_graph.n_nodes,)
        assert noisy.n_nodes == base_graph.n_nodes

    def test_no_permutation_option(self, base_graph):
        _, mapping = make_noisy_copy(base_graph, 0.1, permute=False, random_state=0)
        np.testing.assert_array_equal(mapping, np.arange(base_graph.n_nodes))

    @given(st.floats(min_value=0.0, max_value=0.6))
    @settings(max_examples=10, deadline=None)
    def test_edge_count_never_increases(self, ratio):
        graph = powerlaw_cluster_graph(30, 3, random_state=0)
        noisy, _ = make_noisy_copy(graph, edge_removal_ratio=ratio, random_state=0)
        assert noisy.n_edges <= graph.n_edges
