"""Tests for the datasets package: GraphPair, synthetic generators, IO, registry."""

import numpy as np
import pytest

from repro.datasets.io import load_pair, save_pair
from repro.datasets.pair import GraphPair
from repro.datasets.registry import (
    available_datasets,
    available_prefixes,
    is_known_dataset,
    load_dataset,
    register_dataset,
    register_prefix,
)
from repro.datasets.synthetic import (
    allmovie_imdb,
    bn,
    douban,
    econ,
    flickr_myspace,
    synthetic_pair,
    tiny_pair,
)
from repro.graph.generators import powerlaw_cluster_graph


class TestGraphPair:
    def test_anchor_links(self, small_pair):
        anchors = small_pair.anchor_links
        assert len(anchors) == small_pair.n_anchors
        for i, j in anchors:
            assert small_pair.ground_truth[i] == j

    def test_ground_truth_shape_enforced(self):
        graph = powerlaw_cluster_graph(10, 2, random_state=0)
        with pytest.raises(ValueError):
            GraphPair(graph, graph, np.zeros(5, dtype=int))

    def test_ground_truth_range_enforced(self):
        graph = powerlaw_cluster_graph(10, 2, random_state=0)
        truth = np.full(10, 99)
        with pytest.raises(ValueError):
            GraphPair(graph, graph, truth)

    def test_ground_truth_injectivity_enforced(self):
        graph = powerlaw_cluster_graph(10, 2, random_state=0)
        truth = np.zeros(10, dtype=int)  # every source maps to target 0
        with pytest.raises(ValueError):
            GraphPair(graph, graph, truth)

    def test_split_anchors_ratio(self, small_pair):
        train, test = small_pair.split_anchors(0.25, random_state=0)
        assert len(train) == round(0.25 * small_pair.n_anchors)
        assert len(train) + len(test) == small_pair.n_anchors
        assert not set(train) & set(test)

    def test_split_anchors_deterministic(self, small_pair):
        a = small_pair.split_anchors(0.1, random_state=3)
        b = small_pair.split_anchors(0.1, random_state=3)
        assert a == b

    def test_split_anchors_invalid_ratio(self, small_pair):
        with pytest.raises(ValueError):
            small_pair.split_anchors(1.0)

    def test_prior_alignment_matrix(self, small_pair):
        anchors = small_pair.anchor_links[:3]
        prior = small_pair.prior_alignment_matrix(anchors)
        assert prior.shape == (
            small_pair.source.n_nodes,
            small_pair.target.n_nodes,
        )
        for i, j in anchors:
            assert prior[i, j] == 1.0
        assert prior.nnz == 3

    def test_prior_with_uniform_mass(self, small_pair):
        prior = small_pair.prior_alignment_matrix(uniform_value=0.01)
        assert prior.nnz == small_pair.source.n_nodes * small_pair.target.n_nodes

    def test_reversed_pair(self, small_pair):
        reversed_pair = small_pair.reversed()
        for i, j in small_pair.anchor_links:
            assert reversed_pair.ground_truth[j] == i
        assert reversed_pair.source.n_nodes == small_pair.target.n_nodes

    def test_summary_fields(self, small_pair):
        summary = small_pair.summary()
        assert summary["source_nodes"] == small_pair.source.n_nodes
        assert summary["n_anchors"] == small_pair.n_anchors

    def test_repr(self, small_pair):
        assert "GraphPair" in repr(small_pair)


class TestSyntheticPair:
    def test_full_overlap_ground_truth_is_permutation(self):
        source = powerlaw_cluster_graph(30, 3, random_state=0)
        pair = synthetic_pair(source, edge_removal_ratio=0.1, random_state=0)
        assert pair.n_anchors == 30
        assert sorted(pair.ground_truth.tolist()) == list(range(30))

    def test_partial_overlap(self):
        source = powerlaw_cluster_graph(40, 3, random_state=0)
        pair = synthetic_pair(
            source, target_node_fraction=0.5, random_state=0
        )
        assert pair.target.n_nodes == 20
        assert pair.n_anchors == 20
        assert (pair.ground_truth == -1).sum() == 20

    def test_ground_truth_preserves_attributes_without_noise(self):
        source = powerlaw_cluster_graph(25, 3, random_state=1)
        pair = synthetic_pair(source, edge_removal_ratio=0.0, random_state=1)
        for i, j in pair.anchor_links:
            np.testing.assert_array_equal(
                pair.source.attributes[i], pair.target.attributes[j]
            )

    def test_edges_removed(self):
        source = powerlaw_cluster_graph(30, 4, random_state=2)
        pair = synthetic_pair(source, edge_removal_ratio=0.3, random_state=2)
        assert pair.target.n_edges < pair.source.n_edges

    def test_invalid_fraction(self):
        source = powerlaw_cluster_graph(20, 2, random_state=0)
        with pytest.raises(ValueError):
            synthetic_pair(source, target_node_fraction=0.0)


class TestPaperDatasets:
    @pytest.mark.parametrize(
        "factory,attr_dim",
        [(allmovie_imdb, 14), (douban, 16), (flickr_myspace, 3)],
    )
    def test_real_world_standins(self, factory, attr_dim):
        pair = factory(scale=0.25, random_state=0)
        assert pair.source.n_attributes == attr_dim
        assert pair.n_anchors > 0
        assert pair.source.n_nodes >= 60

    def test_allmovie_denser_than_flickr(self):
        dense = allmovie_imdb(scale=0.3, random_state=0)
        sparse = flickr_myspace(scale=0.3, random_state=0)
        assert dense.source.average_degree > sparse.source.average_degree

    def test_douban_partial_overlap(self):
        pair = douban(scale=0.3, random_state=0)
        assert pair.target.n_nodes < pair.source.n_nodes

    @pytest.mark.parametrize("factory", [econ, bn])
    def test_robustness_datasets_accept_noise_level(self, factory):
        low = factory(edge_removal_ratio=0.1, scale=0.3, random_state=0)
        high = factory(edge_removal_ratio=0.5, scale=0.3, random_state=0)
        assert high.target.n_edges < low.target.n_edges
        assert low.n_anchors == low.source.n_nodes

    def test_scale_changes_size(self):
        small = econ(scale=0.3, random_state=0)
        large = econ(scale=0.6, random_state=0)
        assert large.source.n_nodes > small.source.n_nodes

    def test_tiny_pair_deterministic(self):
        a = tiny_pair(n_nodes=20, random_state=5)
        b = tiny_pair(n_nodes=20, random_state=5)
        np.testing.assert_array_equal(a.ground_truth, b.ground_truth)
        assert a.source == b.source


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert {"allmovie_imdb", "douban", "flickr_myspace", "econ", "bn", "tiny"} <= set(
            names
        )

    def test_load_dataset_forwards_kwargs(self):
        pair = load_dataset("econ", edge_removal_ratio=0.3, scale=0.3, random_state=0)
        assert "0.3" in pair.name

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")

    def test_register_custom_dataset(self):
        register_dataset("custom-test", lambda **kwargs: tiny_pair(n_nodes=15))
        pair = load_dataset("custom-test")
        assert pair.source.n_nodes == 15

    def test_register_non_callable_rejected(self):
        with pytest.raises(TypeError):
            register_dataset("bad", 42)


class TestIO:
    def test_roundtrip(self, tmp_path, small_pair):
        directory = save_pair(small_pair, tmp_path / "pair")
        loaded = load_pair(directory)
        assert loaded.name == small_pair.name
        assert loaded.source == small_pair.source
        assert loaded.target == small_pair.target
        np.testing.assert_array_equal(loaded.ground_truth, small_pair.ground_truth)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_pair(tmp_path / "does-not-exist")

    def test_partial_overlap_roundtrip(self, tmp_path):
        pair = douban(scale=0.3, random_state=0)
        loaded = load_pair(save_pair(pair, tmp_path / "douban"))
        np.testing.assert_array_equal(loaded.ground_truth, pair.ground_truth)


def _write_pair_files(
    directory,
    source_edges="3\n0 1\n1 2\n",
    target_edges="3\n0 1\n",
    ground_truth="0 0\n1 1\n",
):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "source.edges").write_text(source_edges)
    (directory / "target.edges").write_text(target_edges)
    (directory / "ground_truth.txt").write_text(ground_truth)
    return directory


class TestIOHardening:
    def test_isolated_nodes_roundtrip(self, tmp_path):
        """Node ids absent from the edge lines survive a save/load cycle."""
        directory = _write_pair_files(
            tmp_path / "iso",
            source_edges="5\n0 1\n",  # nodes 2..4 isolated
            target_edges="4\n2 3\n",
            ground_truth="0 2\n4 3\n",
        )
        loaded = load_pair(directory)
        assert loaded.source.n_nodes == 5
        assert loaded.target.n_nodes == 4
        assert loaded.ground_truth[4] == 3

    def test_empty_edge_list_roundtrip(self, tmp_path):
        directory = _write_pair_files(
            tmp_path / "empty",
            source_edges="3\n",
            target_edges="3\n",
            ground_truth="",
        )
        loaded = load_pair(directory)
        assert loaded.source.n_edges == 0
        assert (loaded.ground_truth == -1).all()

    def test_empty_edge_file_names_file(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad", source_edges="")
        with pytest.raises(ValueError, match="source.edges.*empty edge file"):
            load_pair(directory)

    def test_non_integer_header_names_file_and_line(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad", source_edges="lots\n0 1\n")
        with pytest.raises(ValueError, match=r"source\.edges:1.*node\s*count"):
            load_pair(directory)

    def test_malformed_edge_line_names_file_and_line(self, tmp_path):
        directory = _write_pair_files(
            tmp_path / "bad", source_edges="3\n0 1\n0 1 2\n"
        )
        with pytest.raises(ValueError, match=r"source\.edges:3"):
            load_pair(directory)

    def test_non_integer_edge_tokens(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad", target_edges="3\na b\n")
        with pytest.raises(ValueError, match=r"target\.edges:2.*integers"):
            load_pair(directory)

    def test_out_of_range_edge(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad", source_edges="2\n0 5\n")
        with pytest.raises(ValueError, match=r"source\.edges:2.*outside"):
            load_pair(directory)

    def test_malformed_ground_truth_line(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad", ground_truth="0\n")
        with pytest.raises(ValueError, match=r"ground_truth\.txt:1"):
            load_pair(directory)

    def test_ground_truth_out_of_range_source(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad", ground_truth="9 0\n")
        with pytest.raises(ValueError, match=r"ground_truth\.txt:1.*source id 9"):
            load_pair(directory)

    def test_ground_truth_out_of_range_target(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad", ground_truth="0 9\n")
        with pytest.raises(ValueError, match=r"ground_truth\.txt:1.*target id 9"):
            load_pair(directory)

    def test_attribute_row_mismatch(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad")
        np.save(directory / "source.attrs.npy", np.zeros((7, 2)))
        with pytest.raises(ValueError, match="7 rows.*3 nodes"):
            load_pair(directory)

    def test_missing_edge_file(self, tmp_path):
        directory = _write_pair_files(tmp_path / "bad")
        (directory / "target.edges").unlink()
        with pytest.raises(FileNotFoundError, match="target.edges"):
            load_pair(directory)

    def test_missing_ground_truth_means_no_anchors(self, tmp_path):
        directory = _write_pair_files(tmp_path / "ok")
        (directory / "ground_truth.txt").unlink()
        loaded = load_pair(directory)
        assert (loaded.ground_truth == -1).all()


class TestDirectoryRegistry:
    def test_dir_prefix_loads_saved_pair(self, tmp_path):
        pair = tiny_pair(random_state=0)
        directory = save_pair(pair, tmp_path / "exported")
        loaded = load_dataset(f"dir:{directory}")
        assert loaded.source.n_nodes == pair.source.n_nodes
        np.testing.assert_array_equal(loaded.ground_truth, pair.ground_truth)

    def test_dir_prefix_listed(self):
        assert "dir" in available_prefixes()

    def test_is_known_dataset(self, tmp_path):
        assert is_known_dataset("tiny")
        assert is_known_dataset("dir:/some/path")
        assert not is_known_dataset("dir:")
        assert not is_known_dataset("imaginary")

    def test_dir_prefix_rejects_parameters(self, tmp_path):
        directory = save_pair(tiny_pair(random_state=0), tmp_path / "exported")
        with pytest.raises(TypeError, match="no parameters"):
            load_dataset(f"dir:{directory}", scale=0.5)

    def test_dir_prefix_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(f"dir:{tmp_path / 'nope'}")

    def test_register_custom_prefix(self, tmp_path):
        register_prefix("tinyx", lambda rest, **kw: tiny_pair(random_state=int(rest)))
        try:
            loaded = load_dataset("tinyx:3")
            assert loaded.source.n_nodes > 0
        finally:
            from repro.datasets import registry

            registry._PREFIXES.pop("tinyx", None)

    def test_register_prefix_validation(self):
        with pytest.raises(TypeError):
            register_prefix("bad", 42)
        with pytest.raises(ValueError):
            register_prefix("a:b", tiny_pair)

    def test_plain_name_with_colon_still_plain(self):
        # A registered name containing a colon must win over prefix parsing.
        register_dataset("weird:name", lambda **kw: tiny_pair(random_state=0))
        try:
            assert load_dataset("weird:name").source.n_nodes > 0
        finally:
            from repro.datasets import registry

            registry._REGISTRY.pop("weird:name", None)
