"""Tests for the datasets package: GraphPair, synthetic generators, IO, registry."""

import numpy as np
import pytest

from repro.datasets.io import load_pair, save_pair
from repro.datasets.pair import GraphPair
from repro.datasets.registry import available_datasets, load_dataset, register_dataset
from repro.datasets.synthetic import (
    allmovie_imdb,
    bn,
    douban,
    econ,
    flickr_myspace,
    synthetic_pair,
    tiny_pair,
)
from repro.graph.generators import powerlaw_cluster_graph


class TestGraphPair:
    def test_anchor_links(self, small_pair):
        anchors = small_pair.anchor_links
        assert len(anchors) == small_pair.n_anchors
        for i, j in anchors:
            assert small_pair.ground_truth[i] == j

    def test_ground_truth_shape_enforced(self):
        graph = powerlaw_cluster_graph(10, 2, random_state=0)
        with pytest.raises(ValueError):
            GraphPair(graph, graph, np.zeros(5, dtype=int))

    def test_ground_truth_range_enforced(self):
        graph = powerlaw_cluster_graph(10, 2, random_state=0)
        truth = np.full(10, 99)
        with pytest.raises(ValueError):
            GraphPair(graph, graph, truth)

    def test_ground_truth_injectivity_enforced(self):
        graph = powerlaw_cluster_graph(10, 2, random_state=0)
        truth = np.zeros(10, dtype=int)  # every source maps to target 0
        with pytest.raises(ValueError):
            GraphPair(graph, graph, truth)

    def test_split_anchors_ratio(self, small_pair):
        train, test = small_pair.split_anchors(0.25, random_state=0)
        assert len(train) == round(0.25 * small_pair.n_anchors)
        assert len(train) + len(test) == small_pair.n_anchors
        assert not set(train) & set(test)

    def test_split_anchors_deterministic(self, small_pair):
        a = small_pair.split_anchors(0.1, random_state=3)
        b = small_pair.split_anchors(0.1, random_state=3)
        assert a == b

    def test_split_anchors_invalid_ratio(self, small_pair):
        with pytest.raises(ValueError):
            small_pair.split_anchors(1.0)

    def test_prior_alignment_matrix(self, small_pair):
        anchors = small_pair.anchor_links[:3]
        prior = small_pair.prior_alignment_matrix(anchors)
        assert prior.shape == (
            small_pair.source.n_nodes,
            small_pair.target.n_nodes,
        )
        for i, j in anchors:
            assert prior[i, j] == 1.0
        assert prior.nnz == 3

    def test_prior_with_uniform_mass(self, small_pair):
        prior = small_pair.prior_alignment_matrix(uniform_value=0.01)
        assert prior.nnz == small_pair.source.n_nodes * small_pair.target.n_nodes

    def test_reversed_pair(self, small_pair):
        reversed_pair = small_pair.reversed()
        for i, j in small_pair.anchor_links:
            assert reversed_pair.ground_truth[j] == i
        assert reversed_pair.source.n_nodes == small_pair.target.n_nodes

    def test_summary_fields(self, small_pair):
        summary = small_pair.summary()
        assert summary["source_nodes"] == small_pair.source.n_nodes
        assert summary["n_anchors"] == small_pair.n_anchors

    def test_repr(self, small_pair):
        assert "GraphPair" in repr(small_pair)


class TestSyntheticPair:
    def test_full_overlap_ground_truth_is_permutation(self):
        source = powerlaw_cluster_graph(30, 3, random_state=0)
        pair = synthetic_pair(source, edge_removal_ratio=0.1, random_state=0)
        assert pair.n_anchors == 30
        assert sorted(pair.ground_truth.tolist()) == list(range(30))

    def test_partial_overlap(self):
        source = powerlaw_cluster_graph(40, 3, random_state=0)
        pair = synthetic_pair(
            source, target_node_fraction=0.5, random_state=0
        )
        assert pair.target.n_nodes == 20
        assert pair.n_anchors == 20
        assert (pair.ground_truth == -1).sum() == 20

    def test_ground_truth_preserves_attributes_without_noise(self):
        source = powerlaw_cluster_graph(25, 3, random_state=1)
        pair = synthetic_pair(source, edge_removal_ratio=0.0, random_state=1)
        for i, j in pair.anchor_links:
            np.testing.assert_array_equal(
                pair.source.attributes[i], pair.target.attributes[j]
            )

    def test_edges_removed(self):
        source = powerlaw_cluster_graph(30, 4, random_state=2)
        pair = synthetic_pair(source, edge_removal_ratio=0.3, random_state=2)
        assert pair.target.n_edges < pair.source.n_edges

    def test_invalid_fraction(self):
        source = powerlaw_cluster_graph(20, 2, random_state=0)
        with pytest.raises(ValueError):
            synthetic_pair(source, target_node_fraction=0.0)


class TestPaperDatasets:
    @pytest.mark.parametrize(
        "factory,attr_dim",
        [(allmovie_imdb, 14), (douban, 16), (flickr_myspace, 3)],
    )
    def test_real_world_standins(self, factory, attr_dim):
        pair = factory(scale=0.25, random_state=0)
        assert pair.source.n_attributes == attr_dim
        assert pair.n_anchors > 0
        assert pair.source.n_nodes >= 60

    def test_allmovie_denser_than_flickr(self):
        dense = allmovie_imdb(scale=0.3, random_state=0)
        sparse = flickr_myspace(scale=0.3, random_state=0)
        assert dense.source.average_degree > sparse.source.average_degree

    def test_douban_partial_overlap(self):
        pair = douban(scale=0.3, random_state=0)
        assert pair.target.n_nodes < pair.source.n_nodes

    @pytest.mark.parametrize("factory", [econ, bn])
    def test_robustness_datasets_accept_noise_level(self, factory):
        low = factory(edge_removal_ratio=0.1, scale=0.3, random_state=0)
        high = factory(edge_removal_ratio=0.5, scale=0.3, random_state=0)
        assert high.target.n_edges < low.target.n_edges
        assert low.n_anchors == low.source.n_nodes

    def test_scale_changes_size(self):
        small = econ(scale=0.3, random_state=0)
        large = econ(scale=0.6, random_state=0)
        assert large.source.n_nodes > small.source.n_nodes

    def test_tiny_pair_deterministic(self):
        a = tiny_pair(n_nodes=20, random_state=5)
        b = tiny_pair(n_nodes=20, random_state=5)
        np.testing.assert_array_equal(a.ground_truth, b.ground_truth)
        assert a.source == b.source


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert {"allmovie_imdb", "douban", "flickr_myspace", "econ", "bn", "tiny"} <= set(
            names
        )

    def test_load_dataset_forwards_kwargs(self):
        pair = load_dataset("econ", edge_removal_ratio=0.3, scale=0.3, random_state=0)
        assert "0.3" in pair.name

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")

    def test_register_custom_dataset(self):
        register_dataset("custom-test", lambda **kwargs: tiny_pair(n_nodes=15))
        pair = load_dataset("custom-test")
        assert pair.source.n_nodes == 15

    def test_register_non_callable_rejected(self):
        with pytest.raises(TypeError):
            register_dataset("bad", 42)


class TestIO:
    def test_roundtrip(self, tmp_path, small_pair):
        directory = save_pair(small_pair, tmp_path / "pair")
        loaded = load_pair(directory)
        assert loaded.name == small_pair.name
        assert loaded.source == small_pair.source
        assert loaded.target == small_pair.target
        np.testing.assert_array_equal(loaded.ground_truth, small_pair.ground_truth)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_pair(tmp_path / "does-not-exist")

    def test_partial_overlap_roundtrip(self, tmp_path):
        pair = douban(scale=0.3, random_state=0)
        loaded = load_pair(save_pair(pair, tmp_path / "douban"))
        np.testing.assert_array_equal(loaded.ground_truth, pair.ground_truth)
