"""Tests for the sparse compute backend (:mod:`repro.backend.sparse`).

The backend is opt-in by design: it registers with negative priority so
``"auto"`` keeps resolving to numpy and the default float64 path stays
bit-identical; asked for explicitly, it routes qualifying GEMMs through
scipy.sparse and falls back (bit-identically) to the dense product
otherwise.
"""

import numpy as np
import pytest

from repro.backend.compute import compute_registry, get_compute_backend
from repro.backend.sparse import (
    SPARSE_DENSITY_THRESHOLD,
    scipy_available,
    sparse_matmul,
)


def _sparse_operands(rng, shape_a=(80, 64), shape_b=(64, 72), density=0.05):
    a = rng.standard_normal(shape_a)
    b = rng.standard_normal(shape_b)
    a[rng.random(shape_a) > density] = 0.0
    b[rng.random(shape_b) > density] = 0.0
    return a, b


class TestRegistration:
    def test_registered_but_never_auto(self):
        registry = compute_registry()
        assert "sparse" in registry.names()
        assert registry.is_available("sparse") is scipy_available()
        # Negative priority: auto must keep resolving to numpy even though
        # sparse is available, preserving the locked bit-identical default.
        assert registry.priority("sparse") < registry.priority("numpy")
        assert registry.default() == "numpy"

    def test_explicit_selection(self):
        backend = get_compute_backend("sparse")
        assert backend.name == "sparse"


class TestSparseMatmul:
    def test_sparse_route_matches_dense(self):
        rng = np.random.default_rng(0)
        a, b = _sparse_operands(rng)
        out = np.empty((a.shape[0], b.shape[1]))
        got = sparse_matmul(a, b, out)
        assert got is out
        np.testing.assert_allclose(got, a @ b, rtol=1e-12, atol=1e-12)

    def test_dense_fallback_is_bit_identical(self):
        # Dense operands fail the density check: the fallback is np.matmul,
        # so the result is bit-identical to the numpy backend.
        rng = np.random.default_rng(1)
        a = rng.standard_normal((80, 64))
        b = rng.standard_normal((64, 72))
        out = np.empty((80, 72))
        np.testing.assert_array_equal(sparse_matmul(a, b, out), a @ b)

    def test_small_operands_skip_csr_conversion(self):
        # Below the element floor even all-zero operands go dense.
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        out = np.empty((4, 4))
        np.testing.assert_array_equal(sparse_matmul(a, b, out), a @ b)

    def test_threshold_override(self):
        rng = np.random.default_rng(2)
        a, b = _sparse_operands(rng, density=0.5)
        out = np.empty((a.shape[0], b.shape[1]))
        # density ~0.5 > default threshold: dense path, exact equality.
        np.testing.assert_array_equal(
            sparse_matmul(a, b, out, threshold=SPARSE_DENSITY_THRESHOLD), a @ b
        )
        # A permissive threshold forces the CSR path; allclose, same values
        # up to accumulation-order ulps (why the backend is opt-in).
        np.testing.assert_allclose(
            sparse_matmul(a, b, out, threshold=1.0), a @ b, rtol=1e-12, atol=1e-12
        )

    def test_flows_through_similarity_kernel(self):
        from repro.similarity import pearson_similarity

        rng = np.random.default_rng(3)
        s = rng.standard_normal((70, 8))
        t = rng.standard_normal((50, 8))
        np.testing.assert_allclose(
            pearson_similarity(s, t, backend="sparse"),
            pearson_similarity(s, t),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_clip_matches_numpy(self):
        backend = get_compute_backend("sparse")
        a = np.linspace(-2, 2, 16).reshape(4, 4)
        out = np.empty_like(a)
        np.testing.assert_array_equal(
            backend.clip(a, -1.0, 1.0, out), np.clip(a, -1.0, 1.0)
        )
