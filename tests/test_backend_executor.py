"""Tests for the ``"executor"`` backend layer (``repro.backend.executor``)."""

import os
import time

import pytest

from repro.backend.executor import (
    PROCESS_POOL,
    SERIAL,
    THREAD_POOL,
    ExecutorBackend,
    ExecutorJob,
    ProcessPoolExecutorBackend,
    SerialExecutor,
    ThreadPoolExecutorBackend,
    available_executor_backends,
    executor_registry,
    get_executor_backend,
    resolve_executor_backend,
)
from repro.backend.registry import AUTO_BACKEND


# Module-level job callables: the process pool pickles them by reference.
def _ok_job(key, timeout=None):
    return {"key": key, "status": "done", "timeout_seen": timeout}


def _exit_job(key, timeout=None):
    os._exit(13)  # hard worker death: not interceptable in-process


def _raise_job(key, timeout=None):
    raise RuntimeError("boom")


def _system_exit_job(key, timeout=None):
    raise SystemExit(13)


def _slow_job(key, timeout=None):
    time.sleep(10.0)
    return {"key": key, "status": "done"}


def _jobs(fn_by_key):
    return [ExecutorJob(key=key, fn=fn, args=(key,)) for key, fn in fn_by_key]


class TestRegistry:
    def test_all_three_backends_registered(self):
        names = executor_registry().names()
        assert {SERIAL, PROCESS_POOL, THREAD_POOL} <= set(names)

    def test_serial_and_thread_pool_always_available(self):
        available = available_executor_backends()
        assert SERIAL in available
        assert THREAD_POOL in available

    def test_auto_resolves_to_highest_priority_available(self):
        resolved = resolve_executor_backend(AUTO_BACKEND)
        assert resolved in available_executor_backends()
        if PROCESS_POOL in available_executor_backends():
            assert resolved == PROCESS_POOL

    def test_explicit_names_resolve_to_themselves(self):
        for name in (SERIAL, THREAD_POOL):
            assert resolve_executor_backend(name) == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_executor_backend("carrier-pigeon")

    def test_get_returns_executor_backend_instances(self):
        assert isinstance(get_executor_backend(SERIAL), SerialExecutor)
        assert isinstance(
            get_executor_backend(THREAD_POOL), ThreadPoolExecutorBackend
        )
        assert isinstance(get_executor_backend(), ExecutorBackend)

    def test_get_rejects_non_executor_registrations(self):
        registry = executor_registry()
        registry.register("bogus-executor", object(), priority=-100)
        try:
            with pytest.raises(TypeError, match="not an ExecutorBackend"):
                get_executor_backend("bogus-executor")
        finally:
            registry.unregister("bogus-executor")


class TestSerialExecutor:
    def test_runs_in_submission_order_and_streams_results(self):
        seen = []
        results = SerialExecutor().submit_jobs(
            _jobs([("a", _ok_job), ("b", _ok_job), ("c", _ok_job)]),
            on_result=lambda key, result: seen.append(key),
        )
        assert seen == ["a", "b", "c"]
        assert {key: r["status"] for key, r in results.items()} == {
            "a": "done",
            "b": "done",
            "c": "done",
        }

    def test_timeout_passes_through_to_the_job(self):
        results = SerialExecutor().submit_jobs(
            _jobs([("a", _ok_job)]), timeout=2.5
        )
        assert results["a"]["timeout_seen"] == 2.5

    def test_system_exit_becomes_a_crash_result(self):
        results = SerialExecutor().submit_jobs(
            _jobs([("a", _ok_job), ("b", _system_exit_job), ("c", _ok_job)]),
            on_crash=lambda job, message: {
                "key": job.key,
                "status": "failed",
                "error": message,
            },
        )
        assert results["a"]["status"] == "done"
        assert results["b"]["status"] == "failed"
        assert "SystemExit" in results["b"]["error"]
        assert results["c"]["status"] == "done"

    def test_default_crash_hook_marks_failed(self):
        results = SerialExecutor().submit_jobs(_jobs([("a", _raise_job)]))
        assert results["a"]["status"] == "failed"
        assert "RuntimeError: boom" in results["a"]["error"]


class TestThreadPoolExecutor:
    def test_completes_all_jobs_with_multiple_workers(self):
        keys = [f"job{i}" for i in range(5)]
        results = ThreadPoolExecutorBackend().submit_jobs(
            _jobs([(key, _ok_job) for key in keys]), workers=3
        )
        assert sorted(results) == sorted(keys)
        assert all(r["status"] == "done" for r in results.values())

    def test_jobs_never_receive_a_sigalrm_timeout(self):
        # SIGALRM is main-thread-only: the budget is enforced outside the
        # job, which must see timeout=None.
        results = ThreadPoolExecutorBackend().submit_jobs(
            _jobs([("a", _ok_job)]), timeout=5.0
        )
        assert results["a"]["timeout_seen"] is None

    def test_crash_becomes_a_result(self):
        results = ThreadPoolExecutorBackend().submit_jobs(
            _jobs([("a", _raise_job), ("b", _ok_job)]), workers=2
        )
        assert results["a"]["status"] == "failed"
        assert results["b"]["status"] == "done"

    def test_lapsed_budget_synthesises_a_timeout_result(self):
        started = time.monotonic()
        results = ThreadPoolExecutorBackend().submit_jobs(
            _jobs([("slow", _slow_job), ("fast", _ok_job)]),
            workers=2,
            timeout=0.3,
            on_timeout=lambda job: {"key": job.key, "status": "timeout"},
        )
        elapsed = time.monotonic() - started
        assert results["slow"]["status"] == "timeout"
        assert results["fast"]["status"] == "done"
        # The runaway thread is abandoned, not joined.
        assert elapsed < 5.0


class TestProcessPoolExecutor:
    def test_completes_all_jobs(self):
        results = ProcessPoolExecutorBackend().submit_jobs(
            _jobs([("a", _ok_job), ("b", _ok_job)]), workers=2
        )
        assert all(r["status"] == "done" for r in results.values())

    def test_worker_exception_becomes_a_result(self):
        results = ProcessPoolExecutorBackend().submit_jobs(
            _jobs([("a", _raise_job), ("b", _ok_job)]), workers=2
        )
        assert results["a"]["status"] == "failed"
        assert "RuntimeError" in results["a"]["error"]
        assert results["b"]["status"] == "done"

    def test_dead_worker_fails_only_the_crasher(self):
        # os._exit kills the worker outright -> BrokenProcessPool fails every
        # in-flight future; the isolation pass must pin the failure on the
        # crasher and still complete its innocent neighbours.
        results = ProcessPoolExecutorBackend().submit_jobs(
            _jobs([("a", _ok_job), ("killer", _exit_job), ("c", _ok_job)]),
            workers=2,
        )
        assert results["killer"]["status"] == "failed"
        assert "worker crashed" in results["killer"]["error"]
        assert results["a"]["status"] == "done"
        assert results["c"]["status"] == "done"
