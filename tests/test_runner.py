"""Tests for the ``repro.runner`` suite subsystem."""

import json

import numpy as np
import pytest

from repro.eval.protocol import MethodResult
from repro.runner import (
    JobSpec,
    SuiteSpec,
    format_suite_table,
    load_artifacts,
    load_manifest,
    resolve_method,
    run_suite,
    to_method_results,
)
from repro.runner.executor import execute_job

FAST_CONFIG = {"epochs": 3, "embedding_dim": 8, "orbit_cache": "off"}


def _sleepy_resolver(name, config):
    """Method resolver whose jobs block until the SIGALRM budget fires.

    The timeout tests used to rely on a real HTC job out-running a 0.3 s
    budget, which made them hostage to machine speed; a sleeping aligner
    exercises the same timeout machinery deterministically (``time.sleep``
    is interrupted by the alarm signal).
    """
    import time as _time

    class _Sleeper:
        name = "Sleeper"
        requires_supervision = False

        def align(self, pair, train_anchors=None):
            _time.sleep(30.0)
            return np.zeros((pair.source.n_nodes, pair.target.n_nodes))

    return _Sleeper()


def _hard_exit_resolver(name, config):
    """Resolver whose ``Killer`` jobs take their worker process down.

    ``os._exit`` bypasses every Python-level handler — under the process
    pool the worker simply dies mid-job (``BrokenProcessPool``).  Only safe
    with the process-pool executor; in-process backends would lose the
    test process itself.
    """
    import os as _os

    if name != "Killer":
        return resolve_method(name, config)

    class _Killer:
        name = "Killer"
        requires_supervision = False

        def align(self, pair, train_anchors=None):
            _os._exit(13)

    return _Killer()


def _system_exit_resolver(name, config):
    """The in-process analogue of :func:`_hard_exit_resolver`.

    ``SystemExit`` is the closest interceptable stand-in for a dying
    worker under the serial and thread-pool executors (a real ``os._exit``
    would kill the whole test process); both must report the same
    worker-crashed failure the process pool does.
    """
    if name != "Killer":
        return resolve_method(name, config)

    class _Killer:
        name = "Killer"
        requires_supervision = False

        def align(self, pair, train_anchors=None):
            raise SystemExit(13)

    return _Killer()


def _tiny_suite(name="unit", methods=("Degree", "Attribute"), **overrides):
    payload = dict(
        name=name,
        datasets=["tiny"],
        methods=list(methods),
        config=dict(FAST_CONFIG),
    )
    payload.update(overrides)
    return SuiteSpec(**payload)


class TestSpecs:
    def test_job_expansion_cross_product(self):
        suite = SuiteSpec(
            name="grid",
            datasets=["tiny", {"name": "econ", "params": {"scale": 0.2}}],
            methods=["HTC", "Degree"],
            grid={"n_neighbors": [5, 10], "epochs": [3]},
        )
        jobs = suite.jobs()
        assert len(jobs) == 2 * 2 * 2
        assert {j.dataset for j in jobs} == {"tiny", "econ"}
        assert {dict(j.config)["n_neighbors"] for j in jobs} == {5, 10}

    def test_job_hash_is_deterministic_and_sensitive(self):
        job = JobSpec.create("tiny", "HTC", config={"epochs": 5})
        same = JobSpec.create("tiny", "HTC", config={"epochs": 5})
        other = JobSpec.create("tiny", "HTC", config={"epochs": 6})
        assert job.hash == same.hash
        assert job.job_id == same.job_id
        assert job.hash != other.hash

    def test_suite_roundtrip(self):
        suite = _tiny_suite(grid={"epochs": [2, 3]}, timeout=12.5)
        clone = SuiteSpec.from_dict(suite.to_dict())
        assert [j.hash for j in clone.jobs()] == [j.hash for j in suite.jobs()]

    def test_suite_from_json_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(_tiny_suite().to_dict()))
        loaded = SuiteSpec.from_json_file(path)
        assert loaded.name == "unit"
        assert loaded.methods == ["Degree", "Attribute"]

    def test_duplicate_cells_collapse_to_one_job(self):
        suite = SuiteSpec(
            name="dup",
            datasets=["tiny", "tiny"],
            methods=["Degree", "Degree"],
            grid={"n_neighbors": [5, 5]},
        )
        jobs = suite.jobs()
        assert len(jobs) == 1

    def test_suite_validation(self):
        with pytest.raises(ValueError):
            SuiteSpec(name="", datasets=["tiny"], methods=["HTC"])
        with pytest.raises(ValueError):
            SuiteSpec(name="x", datasets=[], methods=["HTC"])
        with pytest.raises(ValueError):
            SuiteSpec(name="x", datasets=["tiny"], methods=[])
        with pytest.raises(ValueError):
            SuiteSpec(name="x", datasets=["tiny"], methods=["HTC"], timeout=0)


class TestResolveMethod:
    def test_resolves_htc_variants_and_baselines(self):
        from repro.core import HTCConfig

        config = HTCConfig(epochs=2)
        assert resolve_method("HTC", config).name == "HTC"
        assert resolve_method("HTC-L", config).name == "HTC-L"
        assert resolve_method("IsoRank", config).name == "IsoRank"

    def test_unknown_method_raises(self):
        from repro.core import HTCConfig

        with pytest.raises(KeyError):
            resolve_method("NoSuchMethod", HTCConfig())


class TestExecuteJob:
    def test_successful_job_artifact(self):
        job = JobSpec.create("tiny", "Degree", config=dict(FAST_CONFIG))
        artifact = execute_job(job.to_dict())
        assert artifact["status"] == "done"
        assert artifact["spec_hash"] == job.hash
        result = MethodResult.from_dict(artifact["result"])
        assert result.dataset == "tiny"
        assert "p@1" in result.metrics

    def test_failure_is_captured_not_raised(self):
        job = JobSpec.create("tiny", "NoSuchMethod")
        artifact = execute_job(job.to_dict())
        assert artifact["status"] == "failed"
        assert "NoSuchMethod" in artifact["error"]

    def test_timeout_is_captured(self):
        job = JobSpec.create("tiny", "HTC", config=dict(FAST_CONFIG))
        artifact = execute_job(
            job.to_dict(), timeout=0.3, method_resolver=_sleepy_resolver
        )
        assert artifact["status"] == "timeout"
        assert "0.3" in artifact["error"]


class TestRunSuite:
    def test_serial_run_writes_artifacts_and_manifest(self, tmp_path):
        suite = _tiny_suite()
        report = run_suite(suite, tmp_path, jobs=1)
        assert report.counts == {"done": 2}
        manifest = load_manifest(report.suite_dir)
        assert len(manifest["jobs"]) == 2
        assert all(j["status"] == "done" for j in manifest["jobs"])
        artifacts = load_artifacts(report.suite_dir)
        assert len(artifacts) == 2
        assert {a["spec"]["method"] for a in artifacts} == {"Degree", "Attribute"}

    def test_parallel_run_matches_serial_metrics(self, tmp_path):
        suite = _tiny_suite(name="par", methods=("Degree", "Attribute", "IsoRank"))
        serial = run_suite(suite, tmp_path / "serial", jobs=1)
        parallel = run_suite(suite, tmp_path / "parallel", jobs=2)
        assert parallel.counts == {"done": 3}

        def metrics(report):
            return {
                r.method: r.metrics for r in to_method_results(report.artifacts)
            }

        serial_metrics = metrics(serial)
        parallel_metrics = metrics(parallel)
        assert serial_metrics.keys() == parallel_metrics.keys()
        for method in serial_metrics:
            for key, value in serial_metrics[method].items():
                assert parallel_metrics[method][key] == pytest.approx(value)

    def test_resume_skips_completed_jobs(self, tmp_path):
        suite = _tiny_suite(name="resume")
        first = run_suite(suite, tmp_path, jobs=1)
        assert first.counts == {"done": 2}
        second = run_suite(suite, tmp_path, jobs=1, resume=True)
        assert second.counts == {"cached": 2}
        # Without --resume everything re-runs.
        third = run_suite(suite, tmp_path, jobs=1)
        assert third.counts == {"done": 2}

    def test_resume_invalidated_by_spec_change(self, tmp_path):
        suite = _tiny_suite(name="invalidate")
        run_suite(suite, tmp_path, jobs=1)
        changed = _tiny_suite(name="invalidate")
        changed.config["epochs"] = 4
        report = run_suite(changed, tmp_path, jobs=1, resume=True)
        assert report.counts == {"done": 2}

    def test_resume_ignores_failed_artifacts(self, tmp_path):
        suite = _tiny_suite(name="refail", methods=("NoSuchMethod",))
        first = run_suite(suite, tmp_path, jobs=1)
        assert first.counts == {"failed": 1}
        second = run_suite(suite, tmp_path, jobs=1, resume=True)
        assert second.counts == {"failed": 1}

    def test_timeout_artifact_status(self, tmp_path):
        suite = SuiteSpec(
            name="slow",
            datasets=["tiny"],
            methods=["HTC"],
            config=dict(FAST_CONFIG),
            timeout=0.3,
        )
        report = run_suite(
            suite, tmp_path, jobs=1, method_resolver=_sleepy_resolver
        )
        assert report.counts == {"timeout": 1}

    def test_report_table_renders(self, tmp_path):
        suite = _tiny_suite(name="table")
        report = run_suite(suite, tmp_path, jobs=1)
        text = report.table()
        assert "Degree" in text and "tiny" in text and "status" in text
        assert "done" in text


class TestExecutorBackends:
    def test_manifest_and_report_record_the_executor(self, tmp_path):
        suite = _tiny_suite(name="exec-record")
        report = run_suite(suite, tmp_path, jobs=2, executor="thread-pool")
        assert report.executor == "thread-pool"
        manifest = load_manifest(report.suite_dir)
        assert manifest["executor"] == "thread-pool"

    def test_single_job_auto_stays_serial(self, tmp_path):
        report = run_suite(
            _tiny_suite(name="exec-auto", methods=("Degree",)), tmp_path, jobs=1
        )
        assert report.executor == "serial"
        assert load_manifest(report.suite_dir)["executor"] == "serial"

    def test_spec_hashes_identical_across_executors(self, tmp_path):
        """The executor choice must never leak into job identity."""
        suite = _tiny_suite(name="exec-hash")

        def hashes(executor):
            report = run_suite(
                suite,
                tmp_path / executor,
                jobs=2,
                executor=executor,
            )
            manifest = load_manifest(report.suite_dir)
            return sorted(
                (j["job_id"], j["spec_hash"], j["status"])
                for j in manifest["jobs"]
            )

        serial = hashes("serial")
        assert hashes("thread-pool") == serial
        assert hashes("process-pool") == serial

    def test_suite_spec_executor_backend_is_used(self, tmp_path):
        suite = _tiny_suite(name="exec-spec", executor_backend="thread-pool")
        report = run_suite(suite, tmp_path, jobs=2)
        assert report.executor == "thread-pool"

    def test_explicit_argument_overrides_suite_spec(self, tmp_path):
        suite = _tiny_suite(name="exec-override", executor_backend="thread-pool")
        report = run_suite(suite, tmp_path, jobs=2, executor="serial")
        assert report.executor == "serial"

    def test_thread_pool_timeout_without_sigalrm(self, tmp_path):
        suite = SuiteSpec(
            name="slow-threads",
            datasets=["tiny"],
            methods=["HTC"],
            config=dict(FAST_CONFIG),
            timeout=0.3,
        )
        report = run_suite(
            suite,
            tmp_path,
            jobs=2,
            executor="thread-pool",
            method_resolver=_sleepy_resolver,
        )
        assert report.counts == {"timeout": 1}
        (artifact,) = report.artifacts
        assert "0.3" in artifact["error"]


class TestWorkerCrashRecovery:
    """A dying worker fails its own job, never the suite (all backends)."""

    def _crash_suite(self):
        return _tiny_suite(name="crashy", methods=("Degree", "Killer"))

    def _statuses(self, report):
        return {
            a["spec"]["method"]: a["status"] for a in report.artifacts
        }

    def test_process_pool_survives_worker_death(self, tmp_path):
        report = run_suite(
            self._crash_suite(),
            tmp_path,
            jobs=2,
            executor="process-pool",
            method_resolver=_hard_exit_resolver,
        )
        assert self._statuses(report) == {"Degree": "done", "Killer": "failed"}
        (killed,) = [a for a in report.artifacts if a["spec"]["method"] == "Killer"]
        assert "worker crashed" in killed["error"]

    @pytest.mark.parametrize("executor", ["serial", "thread-pool"])
    def test_in_process_backends_fail_identically(self, tmp_path, executor):
        report = run_suite(
            self._crash_suite(),
            tmp_path,
            jobs=2,
            executor=executor,
            method_resolver=_system_exit_resolver,
        )
        assert self._statuses(report) == {"Degree": "done", "Killer": "failed"}
        (killed,) = [a for a in report.artifacts if a["spec"]["method"] == "Killer"]
        assert "worker crashed" in killed["error"]

    def test_crashed_job_reruns_under_resume(self, tmp_path):
        suite = self._crash_suite()
        run_suite(
            suite,
            tmp_path,
            jobs=2,
            executor="process-pool",
            method_resolver=_hard_exit_resolver,
        )
        # Resume with a healthy resolver: the failed job re-runs, the done
        # job is reused from its artifact.
        report = run_suite(
            suite, tmp_path, jobs=1, resume=True, method_resolver=resolve_method
        )
        assert report.counts == {"cached": 1, "failed": 1}


class TestEmitArtifacts:
    def test_jobs_emit_serve_artifacts(self, tmp_path):
        suite = _tiny_suite(name="emit", methods=("Degree",))
        report = run_suite(suite, tmp_path, emit_artifacts=True)
        (artifact,) = report.artifacts
        assert artifact["status"] == "done"
        emitted = artifact["serve_artifact"]
        assert emitted["artifact_id"]
        serve_dir = tmp_path / "emit" / "serve_artifacts"
        assert (serve_dir / emitted["artifact_id"] / "manifest.json").is_file()

    def test_emitted_artifact_answers_parity_queries(self, tmp_path):
        from repro.core import HTCConfig
        from repro.datasets import load_dataset
        from repro.eval.protocol import run_method
        from repro.runner.executor import resolve_method
        from repro.serve import AlignmentService, load_artifact
        from repro.similarity.matching import top_k_indices

        suite = _tiny_suite(name="emit-parity", methods=("HTC",))
        report = run_suite(suite, tmp_path, emit_artifacts=True)
        (artifact,) = report.artifacts
        emitted = artifact["serve_artifact"]["artifact_id"]
        store = tmp_path / "emit-parity" / "serve_artifacts"

        # Recompute the same job inline to get the dense reference.
        job = suite.jobs()[0]
        config = HTCConfig(**{**dict(job.config), "random_state": job.seed})
        method = resolve_method(job.method, config)
        pair = load_dataset(job.dataset, **dict(job.dataset_params))
        run_method(method, pair, random_state=job.seed)
        dense = method.last_result_.alignment_matrix

        loaded = load_artifact(store, emitted)
        np.testing.assert_array_equal(loaded.result.alignment_matrix, dense)
        service = AlignmentService()
        service.add(loaded)
        rows = np.arange(dense.shape[0])
        np.testing.assert_array_equal(
            service.match(emitted, rows), dense.argmax(axis=1)
        )
        np.testing.assert_array_equal(
            service.top_k(emitted, rows, 5), top_k_indices(dense, 5)
        )

    def test_manifest_records_artifact_ids(self, tmp_path):
        suite = _tiny_suite(name="emit-manifest", methods=("Degree",))
        run_suite(suite, tmp_path, emit_artifacts=True)
        manifest = json.loads(
            (tmp_path / "emit-manifest" / "manifest.json").read_text()
        )
        assert manifest["emit_artifacts"] is True
        assert all("serve_artifact" in entry for entry in manifest["jobs"])

    def test_no_emission_by_default(self, tmp_path):
        suite = _tiny_suite(name="no-emit", methods=("Degree",))
        report = run_suite(suite, tmp_path)
        (artifact,) = report.artifacts
        assert "serve_artifact" not in artifact
        assert not (tmp_path / "no-emit" / "serve_artifacts").exists()

    def test_resume_reruns_cached_jobs_missing_artifacts(self, tmp_path):
        """--resume --emit-artifacts must not skip jobs that never emitted."""
        suite = _tiny_suite(name="late-emit", methods=("Degree",))
        run_suite(suite, tmp_path)  # first run: no artifacts
        report = run_suite(suite, tmp_path, resume=True, emit_artifacts=True)
        (artifact,) = report.artifacts
        assert artifact["status"] == "done"  # re-ran, not cached
        assert "serve_artifact" in artifact
        # a second resume now finds the artifact and skips
        report = run_suite(suite, tmp_path, resume=True, emit_artifacts=True)
        (artifact,) = report.artifacts
        assert artifact["status"] == "cached"


class TestAggregation:
    def test_format_suite_table_includes_failures(self, tmp_path):
        suite = _tiny_suite(name="mixed", methods=("Degree", "NoSuchMethod"))
        report = run_suite(suite, tmp_path, jobs=1)
        table = format_suite_table(report.artifacts, title="mixed")
        assert "failed" in table and "done" in table

    def test_to_method_results_skips_failures(self, tmp_path):
        suite = _tiny_suite(name="skipf", methods=("Degree", "NoSuchMethod"))
        report = run_suite(suite, tmp_path, jobs=1)
        results = to_method_results(report.artifacts)
        assert [r.method for r in results] == ["Degree"]

    def test_load_artifacts_without_manifest(self, tmp_path):
        suite = _tiny_suite(name="nomanifest")
        report = run_suite(suite, tmp_path, jobs=1)
        (report.suite_dir / "manifest.json").unlink()
        artifacts = load_artifacts(report.suite_dir)
        assert len(artifacts) == 2


class TestCLIRunSuite:
    def test_run_suite_command(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "run-suite",
                "--datasets",
                "tiny",
                "--methods",
                "Degree",
                "Attribute",
                "--epochs",
                "3",
                "--dim",
                "8",
                "--jobs",
                "1",
                "--output",
                str(tmp_path),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "manifest written" in output
        assert "done: 2" in output

    def test_run_suite_resume_flag(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "run-suite",
            "--datasets",
            "tiny",
            "--methods",
            "Degree",
            "--epochs",
            "3",
            "--dim",
            "8",
            "--output",
            str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "cached: 1" in capsys.readouterr().out

    def test_run_suite_from_json(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(_tiny_suite(name="fromjson").to_dict()))
        code = main(
            [
                "run-suite",
                "--suite",
                str(spec_path),
                "--jobs",
                "1",
                "--output",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        manifest = load_manifest(tmp_path / "out" / "fromjson")
        assert len(manifest["jobs"]) == 2

    def test_run_suite_propagates_failure_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "run-suite",
                "--datasets",
                "tiny",
                "--methods",
                "Degree",
                "NoSuchMethod",
                "--epochs",
                "3",
                "--dim",
                "8",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 1


class TestMethodResultRoundtrip:
    def test_to_from_dict(self):
        result = MethodResult(
            method="HTC",
            dataset="tiny",
            metrics={"p@1": 0.5, "MRR": 0.6},
            time_seconds=1.25,
            n_runs=2,
            stage_times={"training": 1.0},
        )
        clone = MethodResult.from_dict(result.to_dict())
        assert clone == result

    def test_json_roundtrip_preserves_metric_order(self):
        result = MethodResult(
            method="HTC",
            dataset="tiny",
            metrics={"p@1": 0.5, "p@10": 0.9, "MRR": 0.6},
            time_seconds=0.1,
        )
        clone = MethodResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert list(clone.metrics) == ["p@1", "p@10", "MRR"]


class TestIntegrationChunking:
    def test_integrate_chunked_identical(self):
        from repro.core.integration import integrate_alignment_matrices

        rng = np.random.default_rng(0)
        matrices = {k: rng.standard_normal((37, 21)) for k in range(4)}
        counts = {0: 3, 1: 0, 2: 5, 3: 2}
        dense, _ = integrate_alignment_matrices(matrices, counts)
        for chunk in (1, 8, 100):
            chunked, _ = integrate_alignment_matrices(
                matrices, counts, chunk_rows=chunk
            )
            np.testing.assert_array_equal(dense, chunked)

    def test_integrate_empty_matrices(self):
        from repro.core.integration import integrate_alignment_matrices

        for chunk in (None, 4):
            final, importance = integrate_alignment_matrices(
                {0: np.zeros((0, 5)), 1: np.zeros((0, 5))},
                {0: 3, 1: 1},
                chunk_rows=chunk,
            )
            assert final.shape == (0, 5)
            assert importance == {0: 0.75, 1: 0.25}
