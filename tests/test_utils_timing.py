"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import StageTimer, Timer


class TestTimer:
    def test_context_manager_measures_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_manual_start_stop(self):
        timer = Timer()
        timer.start()
        time.sleep(0.005)
        elapsed = timer.stop()
        assert elapsed > 0
        assert timer.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestStageTimer:
    def test_accumulates_per_stage(self):
        timer = StageTimer()
        with timer.stage("a"):
            time.sleep(0.002)
        with timer.stage("a"):
            time.sleep(0.002)
        with timer.stage("b"):
            pass
        assert timer.get("a") >= 0.003
        assert timer.get("b") >= 0.0
        assert set(timer.as_dict()) == {"a", "b"}

    def test_total_is_sum_of_stages(self):
        timer = StageTimer()
        timer.add("x", 1.0)
        timer.add("y", 2.5)
        assert timer.total == pytest.approx(3.5)

    def test_unknown_stage_is_zero(self):
        assert StageTimer().get("missing") == 0.0

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            StageTimer().add("x", -1.0)

    def test_stage_records_time_even_on_exception(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("failing"):
                raise RuntimeError("boom")
        assert "failing" in timer.as_dict()

    def test_repr_contains_stage_names(self):
        timer = StageTimer()
        timer.add("training", 0.5)
        assert "training" in repr(timer)
