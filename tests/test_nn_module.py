"""Tests for Module/Parameter bookkeeping."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class _TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(3, 4, random_state=0)
        self.second = Linear(4, 2, random_state=1)
        self.scale = Parameter(np.ones(1), "scale")

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestModule:
    def test_parameters_collected_recursively(self):
        model = _TwoLayer()
        # 2 weights + 2 biases + scale.
        assert len(model.parameters()) == 5

    def test_named_parameters_have_dotted_paths(self):
        names = dict(_TwoLayer().named_parameters())
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_n_parameters(self):
        model = _TwoLayer()
        expected = 3 * 4 + 4 + 4 * 2 + 2 + 1
        assert model.n_parameters() == expected

    def test_zero_grad_clears_all(self):
        model = _TwoLayer()
        out = model(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        model_a = _TwoLayer()
        model_b = _TwoLayer()
        state = model_a.state_dict()
        model_b.load_state_dict(state)
        for (_, pa), (_, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_load_state_dict_missing_key(self):
        model = _TwoLayer()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward()

    def test_parameter_requires_grad(self):
        assert Parameter(np.zeros(2)).requires_grad
