"""Tests for the observability core (repro.obs) and its integrations."""

import json
import math
import threading

import numpy as np
import pytest

from repro.api.core import ApiState, RawResponse, dispatch, handle_metrics
from repro.obs.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    OBS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.tracing import enable_tracing, span, tracing_enabled
from repro.serve import AlignmentService, export_result
from repro.serve.service import QUERY_STAGES


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    enable_tracing(False)
    yield
    enable_tracing(False)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_store")
    matrix = np.random.default_rng(11).standard_normal((20, 15))
    info = export_result(
        matrix,
        root=root,
        name="obs-test",
        index_k=6,
        metadata={"dataset": "tiny", "method": "Degree"},
    )
    return root, info.artifact_id


# ----------------------------------------------------------------------
# metrics core
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_reset(self):
        counter = Counter()
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7.0


class TestHistogram:
    def test_default_buckets_log_spaced(self):
        ratios = [b2 / b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])]
        assert all(abs(r - 10 ** 0.25) < 1e-9 for r in ratios)
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(100.0)

    def test_observe_and_summary(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.5):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.503)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.5)

    def test_quantile_is_exact_upper_bound(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(1e-4, 10.0, size=500)
        histogram = Histogram()
        for value in values:
            histogram.observe(float(value))
        for q in (0.5, 0.95, 0.99):
            true_quantile = float(np.quantile(values, q))
            assert histogram.quantile(q) >= true_quantile
            # ...and the bound is tight: at most one bucket factor above.
            assert histogram.quantile(q) <= true_quantile * 10 ** 0.25 * 1.0001

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_overflow_bucket_reports_observed_max(self):
        histogram = Histogram()
        histogram.observe(12345.0)  # above the largest finite bound
        assert histogram.quantile(0.99) == 12345.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_merge_requires_same_buckets(self):
        left = Histogram(buckets=(1.0, 2.0))
        right = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket schemes"):
            left.merge(right.snapshot())

    def test_merge_equals_joint_observation(self):
        rng = np.random.default_rng(1)
        a_values = rng.uniform(0, 5, size=100)
        b_values = rng.uniform(0, 5, size=77)
        separate_a, separate_b, joint = Histogram(), Histogram(), Histogram()
        for value in a_values:
            separate_a.observe(float(value))
            joint.observe(float(value))
        for value in b_values:
            separate_b.observe(float(value))
            joint.observe(float(value))
        separate_a.merge(separate_b.snapshot())
        merged_snap, joint_snap = separate_a.snapshot(), joint.snapshot()
        assert merged_snap["counts"] == joint_snap["counts"]
        assert merged_snap["count"] == joint_snap["count"]
        assert merged_snap["sum"] == pytest.approx(joint_snap["sum"])

    def test_merge_associative(self):
        rng = np.random.default_rng(2)
        chunks = [rng.uniform(0, 2, size=50) for _ in range(3)]

        def build(values):
            histogram = Histogram()
            for value in values:
                histogram.observe(float(value))
            return histogram

        # (a + b) + c
        left = build(chunks[0])
        left.merge(build(chunks[1]).snapshot())
        left.merge(build(chunks[2]).snapshot())
        # a + (b + c)
        inner = build(chunks[1])
        inner.merge(build(chunks[2]).snapshot())
        right = build(chunks[0])
        right.merge(inner.snapshot())
        assert left.snapshot()["counts"] == right.snapshot()["counts"]
        assert left.snapshot()["count"] == right.snapshot()["count"]
        assert left.snapshot()["sum"] == pytest.approx(right.snapshot()["sum"])


class TestConcurrency:
    THREADS = 8
    PER_THREAD = 2000

    def test_concurrent_counter_no_lost_updates(self):
        counter = Counter()
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            for _ in range(self.PER_THREAD):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_concurrent_counter_monotone_under_load(self):
        counter = Counter()
        stop = threading.Event()

        def work():
            while not stop.is_set():
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        samples = [counter.value for _ in range(500)]
        stop.set()
        for thread in threads:
            thread.join()
        assert all(b >= a for a, b in zip(samples, samples[1:]))

    def test_concurrent_histogram_no_lost_updates(self):
        histogram = Histogram()
        barrier = threading.Barrier(self.THREADS)

        def work(seed):
            values = np.random.default_rng(seed).uniform(0, 1, self.PER_THREAD)
            barrier.wait()
            for value in values:
                histogram.observe(float(value))

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = histogram.snapshot()
        assert snap["count"] == self.THREADS * self.PER_THREAD
        assert sum(snap["counts"]) == self.THREADS * self.PER_THREAD

    def test_concurrent_registry_series_creation(self):
        registry = MetricsRegistry("t")
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            for i in range(200):
                registry.counter("shared_total", worker=i % 5).inc()

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.sum_values("shared_total") == self.THREADS * 200
        assert len(registry.family("shared_total")) == 5


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry("t")
        assert registry.counter("a_total", x=1) is registry.counter("a_total", x=1)
        assert registry.counter("a_total", x=1) is not registry.counter(
            "a_total", x=2
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry("t")
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing", other="label")

    def test_snapshot_roundtrip_merge(self):
        registry = MetricsRegistry("t")
        registry.counter("c_total", op="x").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == OBS_SCHEMA_VERSION
        assert json.loads(json.dumps(snapshot)) == snapshot  # JSON-safe
        other = MetricsRegistry("u")
        other.merge_snapshot(snapshot)
        other.merge_snapshot(snapshot)
        assert other.counter("c_total", op="x").value == 6
        assert other.histogram("h_seconds").count == 2

    def test_merge_snapshot_rejects_other_major(self):
        registry = MetricsRegistry("t")
        with pytest.raises(ValueError, match="schema"):
            registry.merge_snapshot({"schema_version": "99.0", "metrics": []})

    def test_reset_zeroes_but_keeps_series(self):
        registry = MetricsRegistry("t")
        registry.counter("c_total").inc(5)
        registry.histogram("h_seconds").observe(1.0)
        registry.reset()
        assert registry.counter("c_total").value == 0
        assert registry.histogram("h_seconds").count == 0
        assert len(registry) == 2

    def test_default_registry_is_process_global(self):
        assert default_registry() is default_registry()


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_disabled_span_records_nothing(self):
        registry = MetricsRegistry("t")
        assert not tracing_enabled()
        with span("phase", registry):
            pass
        assert len(registry) == 0

    def test_disabled_span_is_shared_singleton(self):
        assert span("a") is span("b")  # no allocation on the off path

    def test_enabled_span_records_histogram_and_counter(self):
        registry = MetricsRegistry("t")
        enable_tracing(True)
        with span("load", registry):
            pass
        with span("load", registry):
            pass
        assert registry.counter("span_total", span="load").value == 2
        assert registry.histogram("span_seconds", span="load").count == 2

    def test_nested_spans_build_paths(self):
        registry = MetricsRegistry("t")
        enable_tracing(True)
        with span("outer", registry):
            with span("inner", registry):
                pass
            with span("inner", registry):
                pass
        paths = {
            labels[0][1]
            for name, labels, _ in registry.collect()
            if name == "span_total"
        }
        assert paths == {"outer", "outer/inner"}
        assert registry.counter("span_total", span="outer/inner").value == 2

    def test_nesting_is_per_thread(self):
        registry = MetricsRegistry("t")
        enable_tracing(True)
        paths = []

        def worker():
            with span("child", registry) as active:
                paths.append(active.path)

        with span("parent", registry):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker thread has its own stack: no "parent/" prefix.
        assert paths == ["child"]


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
class TestExposition:
    def test_prometheus_golden(self):
        registry = MetricsRegistry("t")
        registry.counter("requests_total", endpoint="/match").inc(3)
        registry.gauge("hosted").set(2)
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        expected = "\n".join(
            [
                "# TYPE hosted gauge",
                "hosted 2",
                "# TYPE lat_seconds histogram",
                'lat_seconds_bucket{le="0.1"} 1',
                'lat_seconds_bucket{le="1"} 2',
                'lat_seconds_bucket{le="+Inf"} 3',
                "lat_seconds_sum 5.55",
                "lat_seconds_count 3",
                "# TYPE requests_total counter",
                'requests_total{endpoint="/match"} 3',
            ]
        ) + "\n"
        assert prometheus_text(registry) == expected

    def test_deterministic_across_insertion_order(self):
        first, second = MetricsRegistry("a"), MetricsRegistry("b")
        first.counter("x_total").inc()
        first.counter("a_total", z=1).inc()
        second.counter("a_total", z=1).inc()
        second.counter("x_total").inc()
        assert prometheus_text(first) == prometheus_text(second)

    def test_name_and_label_sanitization(self):
        registry = MetricsRegistry("t")
        registry.counter("weird.name-total", **{"label": 'va"l\nue'}).inc()
        text = prometheus_text(registry)
        assert "weird_name_total" in text
        assert r"va\"l\nue" in text

    def test_parse_roundtrip(self):
        registry = MetricsRegistry("t")
        registry.counter("c_total", op="x").inc(4)
        registry.histogram("h_seconds").observe(0.02)
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert parsed["c_total"]['c_total{op="x"}'] == 4
        assert parsed["h_seconds"]["h_seconds_count"] == 1

    def test_json_snapshot_merges_registries(self):
        first, second = MetricsRegistry("a"), MetricsRegistry("b")
        first.counter("one_total").inc()
        second.counter("two_total").inc(2)
        merged = json_snapshot(first, second)
        names = {entry["name"] for entry in merged["metrics"]}
        assert names == {"one_total", "two_total"}


# ----------------------------------------------------------------------
# service integration
# ----------------------------------------------------------------------
class TestServiceStats:
    def test_latency_key_has_per_op_histograms(self, store):
        root, artifact_id = store
        service = AlignmentService()
        service.load(root, artifact_id)
        service.match(artifact_id, [0, 1, 2])
        service.top_k(artifact_id, [3], 2)
        stats = service.stats()
        assert set(stats["latency"]) == {"match", "top_k"}
        batch = stats["latency"]["match"]["batch"]
        assert batch["count"] == 1
        assert batch["p99"] >= batch["sum"] / batch["count"] >= 0
        stages = stats["latency"]["match"]["stages"]
        assert set(stages) <= set(QUERY_STAGES)
        assert "index_lookup" in stages

    def test_legacy_keys_derived_from_metrics(self, store):
        root, artifact_id = store
        service = AlignmentService()
        service.load(root, artifact_id)
        service.match(artifact_id, [0, 1, 2])
        service.match(artifact_id, [0, 1, 2])
        stats = service.stats()
        assert stats["queries"] == 6
        assert stats["batches"] == 2
        assert stats["cache_hits"] == 3
        assert stats["cache_misses"] == 3
        assert stats["per_op"] == {"match": 6}
        assert stats["total_latency_s"] > 0

    def test_reset_clears_histograms_and_spans(self, store):
        root, artifact_id = store
        service = AlignmentService()
        service.load(root, artifact_id)
        enable_tracing(True)
        with span("custom", service.metrics):
            service.match(artifact_id, [0])
        service.reset_stats()
        stats = service.stats()
        assert stats["queries"] == 0
        assert stats["per_op"] == {}
        assert stats["latency"] == {}
        assert service.metrics.counter("span_total", span="custom").value == 0

    def test_stats_isolated_per_service(self, store):
        root, artifact_id = store
        first, second = AlignmentService(), AlignmentService()
        first.load(root, artifact_id)
        second.load(root, artifact_id)
        first.match(artifact_id, [0, 1])
        assert first.stats()["queries"] == 2
        assert second.stats()["queries"] == 0

    def test_note_never_takes_service_lock(self, store):
        """Stats recording must not serialize against the service lock."""
        root, artifact_id = store
        service = AlignmentService()
        service.load(root, artifact_id)
        with service._lock:  # hold the index/cache lock...
            service._note("match", 4, hits=1, started=0.0)  # ...must not block
        assert service.stats()["batches"] == 1


# ----------------------------------------------------------------------
# /metrics endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def _state(self, store) -> ApiState:
        root, _ = store
        return ApiState(root=root, metrics=MetricsRegistry("test"))

    def test_prometheus_default(self, store):
        root, artifact_id = store
        state = self._state(store)
        status, payload = dispatch(
            state, "POST", "/match", body={"artifact_id": artifact_id, "nodes": [0]}
        )
        assert status == 200
        status, raw = dispatch(state, "GET", "/metrics")
        assert status == 200
        assert isinstance(raw, RawResponse)
        assert raw.content_type == PROMETHEUS_CONTENT_TYPE
        parsed = parse_prometheus_text(raw.text)
        assert (
            parsed["api_requests_total"][
                'api_requests_total{endpoint="/match",status="2xx"}'
            ]
            == 1
        )
        assert 'serve_stage_seconds_bucket{op="match",stage="index_lookup"' in raw.text

    def test_scrape_is_not_self_counted(self, store):
        state = self._state(store)
        _, first = dispatch(state, "GET", "/metrics")
        _, second = dispatch(state, "GET", "/metrics")
        assert first.text == second.text

    def test_json_format(self, store):
        state = self._state(store)
        dispatch(state, "GET", "/health")
        status, payload = dispatch(
            state, "GET", "/metrics", params={"format": "json"}
        )
        assert status == 200
        assert payload["schema_version"] == OBS_SCHEMA_VERSION
        names = {entry["name"] for entry in payload["metrics"]}
        assert "api_requests_total" in names

    def test_unknown_format_is_400(self, store):
        state = self._state(store)
        status, payload = dispatch(
            state, "GET", "/metrics", params={"format": "xml"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_error_requests_counted_by_status_class(self, store):
        state = self._state(store)
        dispatch(state, "GET", "/no-such-route")
        _, raw = dispatch(state, "GET", "/metrics")
        parsed = parse_prometheus_text(raw.text)
        assert (
            parsed["api_requests_total"][
                'api_requests_total{endpoint="other",status="4xx"}'
            ]
            == 1
        )

    def test_handle_metrics_merges_service_registry(self, store):
        root, artifact_id = store
        state = self._state(store)
        state.service.load(root, artifact_id)
        state.service.match(artifact_id, [0, 1])
        raw = handle_metrics(state)
        assert "serve_queries_total" in raw.text  # from service registry
        parsed = parse_prometheus_text(raw.text)
        assert (
            parsed["serve_queries_total"]['serve_queries_total{op="match"}'] == 2
        )

    def test_stdlib_http_serves_metrics(self, store):
        import urllib.request

        from repro.api.http import BackgroundServer

        root, artifact_id = store
        state = self._state(store)
        with BackgroundServer(state) as server:
            response = urllib.request.urlopen(server.address + "/metrics")
            body = response.read().decode()
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        _, raw = dispatch(state, "GET", "/metrics")
        assert body == raw.text

    def test_fastapi_metrics_parity_with_stdlib(self, store):
        pytest.importorskip("fastapi")
        testclient = pytest.importorskip("fastapi.testclient")
        from repro.api.asgi import create_app

        root, artifact_id = store
        state = self._state(store)
        client = testclient.TestClient(create_app(state))
        body = {"artifact_id": artifact_id, "nodes": [0, 1, 2]}
        assert client.post("/match", json=body).status_code == 200
        asgi_scrape = client.get("/metrics")
        assert asgi_scrape.status_code == 200
        assert (
            asgi_scrape.headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        )
        # Byte-identical with the stdlib/dispatch rendering of the same
        # state — the transport contributes nothing to the page.
        _, raw = dispatch(state, "GET", "/metrics")
        assert asgi_scrape.text == raw.text
        assert "api_request_seconds_bucket" in asgi_scrape.text


# ----------------------------------------------------------------------
# runner integration
# ----------------------------------------------------------------------
class TestRunnerObservability:
    def test_job_spans_merged_into_manifest(self, tmp_path):
        from repro.runner.executor import run_suite
        from repro.runner.spec import SuiteSpec

        enable_tracing(True)
        suite = SuiteSpec(
            name="obs", datasets=["tiny"], methods=["Degree"], n_runs=1, seed=0
        )
        report = run_suite(suite, tmp_path, jobs=1)
        manifest = json.loads(report.manifest_path.read_text())
        merged = MetricsRegistry("check")
        merged.merge_snapshot(manifest["observability"])
        spans = {
            labels[0][1]
            for name, labels, _ in merged.collect()
            if name == "span_seconds"
        }
        assert "runner.job" in spans
        assert "runner.job/align" in spans

    def test_manifest_clean_when_tracing_off(self, tmp_path):
        from repro.runner.executor import run_suite
        from repro.runner.spec import SuiteSpec

        suite = SuiteSpec(
            name="obs-off", datasets=["tiny"], methods=["Degree"], n_runs=1, seed=0
        )
        report = run_suite(suite, tmp_path, jobs=1)
        manifest = json.loads(report.manifest_path.read_text())
        assert "observability" not in manifest
        assert all("observability" not in a for a in report.artifacts)


class TestBackendResolutionCounter:
    def test_resolution_counted(self):
        from repro.backend.registry import get_registry

        registry = get_registry("executor")
        counter_before = default_registry().counter(
            "backend_resolutions_total", kind="executor", backend="serial"
        ).value
        registry.resolve("serial")
        counter_after = default_registry().counter(
            "backend_resolutions_total", kind="executor", backend="serial"
        ).value
        assert counter_after == counter_before + 1
