"""Tests for repro.nn.functional."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn.functional import (
    frobenius_loss,
    get_activation,
    mse_loss,
    relu,
    sigmoid,
    softmax_rows,
    sparse_matmul,
    square,
    tanh,
)
from repro.nn.tensor import Tensor

from _helpers import numerical_gradient


class TestActivations:
    def test_relu_forward(self):
        out = relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        relu(x).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 1.0])

    def test_tanh_forward_and_grad(self):
        value = np.array([0.5, -0.3])
        x = Tensor(value.copy(), requires_grad=True)
        tanh(x).sum().backward()
        np.testing.assert_allclose(x.grad, 1 - np.tanh(value) ** 2, atol=1e-10)

    def test_sigmoid_forward_and_grad(self):
        value = np.array([0.2, -1.0])
        x = Tensor(value.copy(), requires_grad=True)
        sigmoid(x).sum().backward()
        s = 1 / (1 + np.exp(-value))
        np.testing.assert_allclose(x.grad, s * (1 - s), atol=1e-10)

    def test_get_activation_lookup(self):
        assert get_activation("relu") is relu
        assert get_activation("identity")(Tensor([1.0])).data[0] == 1.0

    def test_get_activation_unknown(self):
        with pytest.raises(ValueError):
            get_activation("swish-9000")


class TestSparseMatmul:
    def test_forward_matches_dense(self):
        sparse = sp.csr_matrix(np.array([[1.0, 0.0], [2.0, 3.0]]))
        dense = Tensor(np.array([[1.0, 1.0], [2.0, 2.0]]))
        out = sparse_matmul(sparse, dense)
        np.testing.assert_array_equal(out.data, sparse.toarray() @ dense.data)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        sparse = sp.random(5, 5, density=0.5, random_state=0, format="csr")
        value = rng.normal(size=(5, 3))

        x = Tensor(value.copy(), requires_grad=True)
        sparse_matmul(sparse, x).sum().backward()
        np.testing.assert_allclose(
            x.grad,
            numerical_gradient(lambda v: float(sparse.dot(v).sum()), value),
            atol=1e-5,
        )

    def test_rejects_dense_left_operand(self):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(2), Tensor(np.eye(2)))


class TestSoftmaxRows:
    def test_rows_sum_to_one(self):
        out = softmax_rows(Tensor(np.random.default_rng(0).normal(size=(4, 5))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        value = rng.normal(size=(3, 4))
        weights = rng.normal(size=(3, 4))

        def loss(v):
            shifted = v - v.max(axis=1, keepdims=True)
            e = np.exp(shifted)
            s = e / e.sum(axis=1, keepdims=True)
            return float((s * weights).sum())

        x = Tensor(value.copy(), requires_grad=True)
        (softmax_rows(x) * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(x.grad, numerical_gradient(loss, value), atol=1e-5)


class TestLosses:
    def test_frobenius_loss_zero_for_exact_reconstruction(self):
        target = np.eye(3)
        loss = frobenius_loss(Tensor(target.copy(), requires_grad=True), target)
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_frobenius_loss_value(self):
        target = np.zeros((2, 2))
        loss = frobenius_loss(Tensor(np.ones((2, 2))), target)
        assert loss.item() == pytest.approx(2.0)

    def test_frobenius_loss_gradient(self):
        rng = np.random.default_rng(2)
        target = rng.normal(size=(3, 3))
        value = rng.normal(size=(3, 3))

        def loss_fn(v):
            return float(np.sqrt(((v - target) ** 2).sum() + 1e-12))

        x = Tensor(value.copy(), requires_grad=True)
        frobenius_loss(x, target).backward()
        np.testing.assert_allclose(x.grad, numerical_gradient(loss_fn, value), atol=1e-4)

    def test_frobenius_loss_accepts_sparse_target(self):
        target = sp.identity(3, format="csr")
        loss = frobenius_loss(Tensor(np.zeros((3, 3))), target)
        assert loss.item() == pytest.approx(np.sqrt(3.0))

    def test_frobenius_shape_mismatch(self):
        with pytest.raises(ValueError):
            frobenius_loss(Tensor(np.zeros((2, 2))), np.zeros((3, 3)))

    def test_mse_loss(self):
        loss = mse_loss(Tensor([1.0, 3.0]), np.array([0.0, 1.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_square(self):
        np.testing.assert_array_equal(square(Tensor([2.0, -3.0])).data, [4.0, 9.0])
