"""Tests for the fast edge-orbit counter (the paper's Orca substitute)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_list, from_networkx
from repro.orbits.brute_force import brute_force_edge_orbits
from repro.orbits.edge_orbits import _classify_quad, count_edge_orbits
from repro.orbits.graphlets import EDGE_ORBIT_COUNT


def _fast_and_slow(graph):
    return count_edge_orbits(graph), brute_force_edge_orbits(graph)


class TestSmallGraphletsExactCounts:
    """Hand-checked counts on the canonical graphlets themselves."""

    def test_single_edge(self):
        graph = from_edge_list([(0, 1)], n_nodes=2)
        counts = count_edge_orbits(graph)
        expected = np.zeros(EDGE_ORBIT_COUNT, dtype=np.int64)
        expected[0] = 1
        np.testing.assert_array_equal(counts.counts[0], expected)

    def test_triangle(self, triangle_graph):
        counts = count_edge_orbits(triangle_graph)
        for row in counts.counts:
            assert row[0] == 1
            assert row[1] == 0  # no induced two-edge chains in a triangle
            assert row[2] == 1
            assert row[3:].sum() == 0

    def test_path4(self, path_graph):
        counts = count_edge_orbits(path_graph).as_dict()
        # End edges occur once on orbit 3 (end of the P4) and once on orbit 1.
        np.testing.assert_array_equal(counts[(0, 1)][[0, 1, 3, 4]], [1, 1, 1, 0])
        # The middle edge occurs twice on orbit 1 and once on orbit 4.
        np.testing.assert_array_equal(counts[(1, 2)][[0, 1, 3, 4]], [1, 2, 0, 1])

    def test_star(self, star_graph):
        counts = count_edge_orbits(star_graph)
        for row in counts.counts:
            assert row[0] == 1
            assert row[1] == 2  # two 2-edge chains through the centre
            assert row[5] == 1  # the star itself
            assert row[2] == 0 and row[3] == 0 and row[4] == 0

    def test_clique(self, clique_graph):
        counts = count_edge_orbits(clique_graph)
        for row in counts.counts:
            assert row[0] == 1
            assert row[2] == 2  # each K4 edge lies in two triangles
            assert row[12] == 1  # the K4 itself
            assert row[1] == 0 and row[6] == 0

    def test_paw_orbit_roles(self, paw_graph):
        counts = count_edge_orbits(paw_graph).as_dict()
        # Tail edge (2, 3).
        assert counts[(2, 3)][7] == 1
        assert counts[(2, 3)][9] == 0
        # Triangle edge opposite the tailed node: (0, 1).
        assert counts[(0, 1)][9] == 1
        assert counts[(0, 1)][8] == 0
        # Triangle edges incident to the tailed node 2: (0, 2) and (1, 2).
        assert counts[(0, 2)][8] == 1
        assert counts[(1, 2)][8] == 1

    def test_diamond_orbit_roles(self, diamond_graph):
        counts = count_edge_orbits(diamond_graph).as_dict()
        # The chord (1, 3) is the diagonal.
        assert counts[(1, 3)][11] == 1
        assert counts[(1, 3)][10] == 0
        # Outer edges are on orbit 10.
        for edge in [(0, 1), (1, 2), (2, 3), (0, 3)]:
            assert counts[edge][10] == 1
            assert counts[edge][11] == 0

    def test_figure5_edges_distinguished(self, figure5_graph):
        """The paper's Fig. 5 claim: (a,b) and (b,c) share low orbits but differ
        on higher ones."""
        counts = count_edge_orbits(figure5_graph).as_dict()
        edge_ab = counts[(0, 1)]
        edge_bc = counts[(1, 2)]
        assert edge_ab[0] == edge_bc[0] == 1
        assert edge_ab[2] == 0  # (a,b) is in no triangle
        assert edge_bc[2] == 0  # (b,c) is in no triangle either
        # They must differ on at least one higher-order orbit.
        assert not np.array_equal(edge_ab, edge_bc)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_gnp_graphs(self, seed):
        nx_graph = nx.gnp_random_graph(13, 0.3, seed=seed)
        graph = from_networkx(nx_graph)
        fast, slow = _fast_and_slow(graph)
        np.testing.assert_array_equal(fast.counts, slow.counts)

    @pytest.mark.parametrize("seed", range(3))
    def test_dense_graphs(self, seed):
        nx_graph = nx.gnp_random_graph(10, 0.6, seed=seed)
        graph = from_networkx(nx_graph)
        fast, slow = _fast_and_slow(graph)
        np.testing.assert_array_equal(fast.counts, slow.counts)

    def test_barbell_graph(self):
        graph = from_networkx(nx.barbell_graph(4, 2))
        fast, slow = _fast_and_slow(graph)
        np.testing.assert_array_equal(fast.counts, slow.counts)

    def test_complete_bipartite(self):
        graph = from_networkx(nx.complete_bipartite_graph(3, 3))
        fast, slow = _fast_and_slow(graph)
        np.testing.assert_array_equal(fast.counts, slow.counts)

    def test_tree(self):
        graph = from_networkx(nx.balanced_tree(2, 3))
        fast, slow = _fast_and_slow(graph)
        np.testing.assert_array_equal(fast.counts, slow.counts)

    @given(st.integers(min_value=0, max_value=10_000), st.floats(min_value=0.1, max_value=0.5))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_property(self, seed, p):
        nx_graph = nx.gnp_random_graph(11, p, seed=seed)
        graph = from_networkx(nx_graph)
        fast, slow = _fast_and_slow(graph)
        np.testing.assert_array_equal(fast.counts, slow.counts)


class TestClosedFormIdentities:
    """Aggregate identities that must hold on any graph."""

    @pytest.mark.parametrize("seed", range(4))
    def test_triangle_identity(self, seed):
        nx_graph = nx.gnp_random_graph(20, 0.25, seed=seed)
        graph = from_networkx(nx_graph)
        counts = count_edge_orbits(graph)
        n_triangles = sum(nx.triangles(nx_graph).values()) // 3
        # Every triangle contributes its 3 edges once each to orbit 2.
        assert counts.orbit_total(2) == 3 * n_triangles

    @pytest.mark.parametrize("seed", range(4))
    def test_orbit0_equals_edge_count(self, seed):
        nx_graph = nx.gnp_random_graph(20, 0.2, seed=seed)
        graph = from_networkx(nx_graph)
        counts = count_edge_orbits(graph)
        assert counts.orbit_total(0) == graph.n_edges

    @pytest.mark.parametrize("seed", range(4))
    def test_two_edge_chain_identity(self, seed):
        nx_graph = nx.gnp_random_graph(18, 0.25, seed=seed)
        graph = from_networkx(nx_graph)
        counts = count_edge_orbits(graph)
        degrees = graph.degrees
        n_paths2 = int(sum(d * (d - 1) // 2 for d in degrees))
        n_triangles = sum(nx.triangles(nx_graph).values()) // 3
        induced_paths2 = n_paths2 - 3 * n_triangles
        # Each induced two-edge chain contributes its 2 edges to orbit 1.
        assert counts.orbit_total(1) == 2 * induced_paths2

    @pytest.mark.parametrize("seed", range(3))
    def test_k4_identity(self, seed):
        nx_graph = nx.gnp_random_graph(14, 0.5, seed=seed)
        graph = from_networkx(nx_graph)
        counts = count_edge_orbits(graph)
        cliques4 = sum(
            1 for clique in nx.enumerate_all_cliques(nx_graph) if len(clique) == 4
        )
        assert counts.orbit_total(12) == 6 * cliques4


class TestEdgeOrbitCountsContainer:
    def test_as_dict_keys_match_edges(self, triangle_graph):
        counts = count_edge_orbits(triangle_graph)
        assert set(counts.as_dict()) == set(triangle_graph.edge_list())

    def test_orbit_total_out_of_range(self, triangle_graph):
        counts = count_edge_orbits(triangle_graph)
        with pytest.raises(ValueError):
            counts.orbit_total(13)

    def test_empty_graph(self):
        graph = from_edge_list([(0, 1)], n_nodes=2)
        graph = graph.subgraph(np.array([0]))
        counts = count_edge_orbits(graph)
        assert counts.n_edges == 0
        assert counts.counts.shape == (0, EDGE_ORBIT_COUNT)

    def test_counts_are_non_negative(self, figure5_graph):
        counts = count_edge_orbits(figure5_graph)
        assert (counts.counts >= 0).all()


class TestQuadClassifier:
    def test_disconnected_patterns_rejected(self):
        # w attached to nothing.
        assert _classify_quad(False, False, True, True, False) is None
        # w and x form their own component.
        assert _classify_quad(False, False, False, False, True) is None

    def test_clique_pattern(self):
        assert _classify_quad(True, True, True, True, True) == 12

    def test_cycle_pattern(self):
        assert _classify_quad(True, False, False, True, True) == 6

    def test_star_pattern(self):
        assert _classify_quad(True, False, True, False, False) == 5

    def test_middle_chain_pattern(self):
        assert _classify_quad(True, False, False, True, False) == 4

    def test_end_chain_pattern(self):
        assert _classify_quad(True, False, False, False, True) == 3

    def test_diamond_diagonal_vs_outer(self):
        # u, v both degree 3 -> (u, v) is the diagonal.
        assert _classify_quad(True, True, True, True, False) == 11
        # One of them has degree 2 -> outer edge.
        assert _classify_quad(True, True, True, False, True) == 10
