"""The AlignmentService: caching, counters, thread safety, multi-artifact."""

import threading

import numpy as np
import pytest

from repro.core.result import AlignmentResult
from repro.serve import AlignmentService, save_artifact
from repro.serve.index import build_index
from repro.similarity.matching import top_k_indices


def make_service_with_matrix(n_s=40, n_t=30, seed=0, **service_kwargs):
    matrix = np.random.default_rng(seed).standard_normal((n_s, n_t))
    service = AlignmentService(**service_kwargs)
    service.add_index("m", build_index(matrix, k=8))
    return service, matrix


class TestQueries:
    def test_match_parity(self):
        service, matrix = make_service_with_matrix()
        np.testing.assert_array_equal(
            service.match("m", np.arange(40)), matrix.argmax(axis=1)
        )

    def test_top_k_parity(self):
        service, matrix = make_service_with_matrix(seed=1)
        np.testing.assert_array_equal(
            service.top_k("m", np.arange(40), 5), top_k_indices(matrix, 5)
        )

    def test_reverse_ops(self):
        service, matrix = make_service_with_matrix(seed=2)
        np.testing.assert_array_equal(
            service.reverse_match("m", np.arange(30)), matrix.argmax(axis=0)
        )
        np.testing.assert_array_equal(
            service.reverse_top_k("m", np.arange(30), 3),
            top_k_indices(matrix.T, 3),
        )

    def test_cached_answers_identical(self):
        service, matrix = make_service_with_matrix(seed=3)
        first = service.top_k("m", [4, 7], 4)
        second = service.top_k("m", [4, 7], 4)
        np.testing.assert_array_equal(first, second)
        stats = service.stats()
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 2

    def test_cache_disabled(self):
        service, _ = make_service_with_matrix(seed=4, cache_size=0)
        service.match("m", [1, 2])
        service.match("m", [1, 2])
        stats = service.stats()
        assert stats["cache_hits"] == 0
        assert stats["queries"] == 4

    def test_cache_eviction_bounded(self):
        service, _ = make_service_with_matrix(seed=5, cache_size=8)
        service.match("m", np.arange(40))
        assert service.stats()["cache_entries"] <= 8

    def test_unknown_artifact(self):
        service = AlignmentService()
        with pytest.raises(KeyError, match="not hosted"):
            service.match("ghost", [0])

    def test_empty_batch(self):
        service, _ = make_service_with_matrix(seed=6)
        assert service.match("m", []).size == 0


class TestMultiArtifact:
    def test_hosts_many_and_isolates_answers(self):
        a = np.random.default_rng(7).standard_normal((20, 20))
        b = np.random.default_rng(8).standard_normal((20, 20))
        service = AlignmentService()
        service.add_index("a", build_index(a, k=4))
        service.add_index("b", build_index(b, k=4))
        assert service.artifact_ids() == ["a", "b"]
        np.testing.assert_array_equal(
            service.match("a", np.arange(20)), a.argmax(axis=1)
        )
        np.testing.assert_array_equal(
            service.match("b", np.arange(20)), b.argmax(axis=1)
        )

    def test_unload_drops_cache(self):
        service, _ = make_service_with_matrix(seed=9)
        service.match("m", [0, 1])
        service.unload("m")
        assert service.artifact_ids() == []
        assert service.stats()["cache_entries"] == 0

    def test_in_flight_answers_do_not_poison_replaced_index_cache(self):
        """An answer computed from a stale index snapshot is never cached."""
        import repro.serve.service as service_module

        a = np.zeros((5, 5))
        a[:, 2] = 1.0
        b = np.zeros((5, 5))
        b[:, 4] = 1.0
        service = AlignmentService()
        service.add_index("m", build_index(a, k=2))

        # Interleave: while a query holds its snapshot of index A, the
        # artifact is replaced by B before the cache insertion happens.
        original_run_op = AlignmentService._run_op

        def racing_run_op(self_service, index, op, nodes, k):
            answers = original_run_op(self_service, index, op, nodes, k)
            if index.indices[0, 0] == 2:  # the query against index A
                service.add_index("m", build_index(b, k=2))
            return answers

        service_module.AlignmentService._run_op = racing_run_op
        try:
            stale = service.match("m", [0])  # computed from A, B swapped in
        finally:
            service_module.AlignmentService._run_op = original_run_op
        assert int(stale[0]) == 2  # the in-flight answer itself is from A
        # ... but it must not have been cached: the hosted index is B now.
        assert int(service.match("m", [0])[0]) == 4

    def test_replacing_artifact_invalidates_cache(self):
        a = np.zeros((5, 5))
        a[:, 2] = 1.0
        b = np.zeros((5, 5))
        b[:, 4] = 1.0
        service = AlignmentService()
        service.add_index("m", build_index(a, k=2))
        assert int(service.match("m", [0])[0]) == 2
        service.add_index("m", build_index(b, k=2))
        assert int(service.match("m", [0])[0]) == 4

    def test_load_from_store(self, tmp_path):
        matrix = np.random.default_rng(10).standard_normal((25, 25))
        info = save_artifact(
            AlignmentResult(alignment_matrix=matrix), root=tmp_path, index_k=6
        )
        service = AlignmentService()
        artifact_id = service.load(tmp_path, info.artifact_id)
        np.testing.assert_array_equal(
            service.match(artifact_id, np.arange(25)), matrix.argmax(axis=1)
        )
        description = service.describe(artifact_id)
        assert description["shape"] == [25, 25]
        assert description["index_k"] == 6


class TestStats:
    def test_counters(self):
        service, _ = make_service_with_matrix(seed=11)
        service.match("m", [0, 1, 2])
        service.top_k("m", [0], 3)
        stats = service.stats()
        assert stats["queries"] == 4
        assert stats["batches"] == 2
        assert stats["per_op"] == {"match": 3, "top_k": 1}
        assert stats["total_latency_s"] >= 0.0
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_reset(self):
        service, _ = make_service_with_matrix(seed=12)
        service.match("m", [0])
        service.reset_stats()
        stats = service.stats()
        assert stats["queries"] == 0
        assert stats["per_op"] == {}


class TestThreadSafety:
    def test_concurrent_queries_are_consistent(self):
        service, matrix = make_service_with_matrix(n_s=64, n_t=48, seed=13)
        expected = matrix.argmax(axis=1)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(50):
                nodes = rng.integers(0, 64, size=8)
                answers = service.match("m", nodes)
                if not np.array_equal(answers, expected[nodes]):
                    errors.append((nodes, answers))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.stats()["queries"] == 8 * 50 * 8


class TestCacheBudgets:
    def test_budget_caps_one_artifact_without_starving_others(self):
        a = np.random.default_rng(20).standard_normal((30, 20))
        b = np.random.default_rng(21).standard_normal((30, 20))
        service = AlignmentService(
            cache_size=256, cache_budgets={"a": 4}
        )
        service.add_index("a", build_index(a, k=4))
        service.add_index("b", build_index(b, k=4))
        service.match("a", np.arange(30))
        service.match("b", np.arange(30))
        stats = service.stats()
        assert stats["cache_budgets"] == {"a": 4}
        # "a" is pinned at its budget; "b" keeps all 30 rows cached.
        assert stats["cache_evictions"] == {"a": 26}
        assert stats["cache_entries"] == 4 + 30
        evictions = service.metrics.counter(
            "service_cache_evictions_total", artifact="a"
        )
        assert evictions.value == 26

    def test_budgeted_entries_still_serve_hits(self):
        service, matrix = make_service_with_matrix(
            seed=22, cache_budgets={"m": 2}
        )
        service.match("m", [5, 6])
        before = service.stats()["cache_hits"]
        np.testing.assert_array_equal(
            service.match("m", [5, 6]), matrix.argmax(axis=1)[[5, 6]]
        )
        assert service.stats()["cache_hits"] == before + 2

    def test_lowering_budget_trims_immediately(self):
        service, _ = make_service_with_matrix(seed=23)
        service.match("m", np.arange(10))
        assert service.stats()["cache_entries"] == 10
        service.set_cache_budget("m", 3)
        stats = service.stats()
        assert stats["cache_entries"] == 3
        assert stats["cache_evictions"] == {"m": 7}
        # Removing the cap stops further budget evictions.
        service.set_cache_budget("m", None)
        assert service.cache_budgets() == {}
        service.match("m", np.arange(10))
        assert service.stats()["cache_entries"] == 10

    def test_negative_budget_rejected(self):
        service = AlignmentService()
        with pytest.raises(ValueError, match="cache_budget"):
            service.set_cache_budget("m", -1)

    def test_invalidation_is_not_counted_as_eviction(self):
        service, _ = make_service_with_matrix(seed=24, cache_budgets={"m": 8})
        service.match("m", np.arange(5))
        service.unload("m")
        stats = service.stats()
        assert stats["cache_entries"] == 0
        assert stats["cache_evictions"] == {}

    def test_global_capacity_evictions_are_attributed(self):
        service, _ = make_service_with_matrix(seed=25, cache_size=8)
        service.match("m", np.arange(12))
        stats = service.stats()
        assert stats["cache_entries"] == 8
        assert stats["cache_evictions"] == {"m": 4}
        evictions = service.metrics.counter(
            "service_cache_evictions_total", artifact="m"
        )
        assert evictions.value == 4
