"""Correctness of the sparse top-k index against the dense kernels."""

import numpy as np
import pytest

from repro.serve.index import (
    DEFAULT_INDEX_K,
    SparseTopKIndex,
    build_index,
    build_index_from_embeddings,
)
from repro.similarity.chunked import chunked_score_matrix
from repro.similarity.matching import top_k_indices


def random_matrix(n_s, n_t, seed=0):
    return np.random.default_rng(seed).standard_normal((n_s, n_t))


def tie_heavy_matrix(n_s, n_t, levels=4, seed=0):
    """Scores drawn from a tiny value set — ties everywhere."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, levels, size=(n_s, n_t)).astype(np.float64)


class TestForwardQueries:
    @pytest.mark.parametrize("shape", [(60, 45), (45, 60), (64, 64)])
    def test_top_k_matches_dense_for_all_smaller_k(self, shape):
        matrix = random_matrix(*shape, seed=1)
        index = build_index(matrix, k=9)
        rows = np.arange(shape[0])
        for k in (1, 2, 5, 9):
            np.testing.assert_array_equal(
                index.top_k(rows, k), top_k_indices(matrix, k)
            )

    def test_match_equals_dense_argmax(self):
        matrix = random_matrix(50, 70, seed=2)
        index = build_index(matrix, k=3)
        np.testing.assert_array_equal(
            index.match(np.arange(50)), matrix.argmax(axis=1)
        )

    @pytest.mark.parametrize("shape", [(80, 37), (37, 80)])
    def test_tie_heavy_matrix_bit_identical(self, shape):
        matrix = tie_heavy_matrix(*shape, levels=3, seed=3)
        index = build_index(matrix, k=8, chunk_rows=16)
        rows = np.arange(shape[0])
        np.testing.assert_array_equal(index.match(rows), matrix.argmax(axis=1))
        for k in (1, 4, 8):
            np.testing.assert_array_equal(
                index.top_k(rows, k), top_k_indices(matrix, k)
            )

    def test_boundary_tie_rows_match_full_sort(self):
        """Rows where the k-th value ties unselected entries stay exact."""
        rng = np.random.default_rng(42)
        for trial in range(20):
            matrix = rng.integers(0, 3, size=(30, 50)).astype(np.float64)
            for k in (1, 2, 7, 49):
                expected = np.argsort(-matrix, axis=1, kind="stable")[:, :k]
                np.testing.assert_array_equal(top_k_indices(matrix, k), expected)

    def test_constant_matrix_ties_resolve_to_lowest_index(self):
        matrix = np.ones((10, 12))
        index = build_index(matrix, k=5)
        np.testing.assert_array_equal(index.match(np.arange(10)), np.zeros(10))
        np.testing.assert_array_equal(
            index.top_k([3], 5), [[0, 1, 2, 3, 4]]
        )

    def test_scores_align_with_indices(self):
        matrix = random_matrix(20, 30, seed=4)
        index = build_index(matrix, k=6)
        rows = np.arange(20)
        indices = index.top_k(rows, 6)
        np.testing.assert_array_equal(
            index.top_k_scores(rows, 6),
            np.take_along_axis(matrix, indices, axis=1),
        )


class TestReverseQueries:
    @pytest.mark.parametrize("shape", [(55, 33), (33, 55)])
    def test_reverse_equals_transposed_dense(self, shape):
        matrix = random_matrix(*shape, seed=5)
        index = build_index(matrix, k=4, reverse_k=7, chunk_rows=16)
        cols = np.arange(shape[1])
        np.testing.assert_array_equal(
            index.reverse_match(cols), matrix.argmax(axis=0)
        )
        for k in (1, 3, 7):
            np.testing.assert_array_equal(
                index.reverse_top_k(cols, k), top_k_indices(matrix.T, k)
            )

    def test_reverse_tie_heavy(self):
        matrix = tie_heavy_matrix(70, 40, levels=2, seed=6)
        index = build_index(matrix, k=3, reverse_k=6, chunk_rows=8)
        cols = np.arange(40)
        np.testing.assert_array_equal(
            index.reverse_match(cols), matrix.argmax(axis=0)
        )
        np.testing.assert_array_equal(
            index.reverse_top_k(cols, 6), top_k_indices(matrix.T, 6)
        )


class TestChunkingInvariance:
    def test_result_independent_of_chunk_rows(self):
        matrix = tie_heavy_matrix(130, 90, levels=5, seed=7)
        reference = build_index(matrix, k=7, reverse_k=7, chunk_rows=None)
        for chunk_rows in (1, 17, 64, 128, 1000):
            other = build_index(matrix, k=7, reverse_k=7, chunk_rows=chunk_rows)
            np.testing.assert_array_equal(reference.indices, other.indices)
            np.testing.assert_array_equal(reference.scores, other.scores)
            np.testing.assert_array_equal(
                reference.reverse_indices, other.reverse_indices
            )
            np.testing.assert_array_equal(
                reference.reverse_scores, other.reverse_scores
            )


class TestEmbeddingBuilder:
    @pytest.mark.parametrize("correction", [None, "lisi", "csls"])
    def test_matches_dense_scoring(self, correction):
        rng = np.random.default_rng(8)
        source = rng.standard_normal((90, 12))
        target = rng.standard_normal((70, 12))
        dense = chunked_score_matrix(
            source, target, measure="pearson", correction=correction, n_neighbors=5
        )
        index = build_index_from_embeddings(
            source,
            target,
            k=6,
            measure="pearson",
            correction=correction,
            n_neighbors=5,
            chunk_rows=64,
        )
        rows = np.arange(90)
        np.testing.assert_array_equal(index.top_k(rows, 6), top_k_indices(dense, 6))
        np.testing.assert_array_equal(index.match(rows), dense.argmax(axis=1))
        np.testing.assert_array_equal(
            index.reverse_match(np.arange(70)), dense.argmax(axis=0)
        )


class TestValidationAndEdges:
    def test_k_clipped_to_width(self):
        matrix = random_matrix(10, 4, seed=9)
        index = build_index(matrix, k=50)
        assert index.indices.shape == (10, 4)
        # queries asking for more than the width are clipped, like the
        # dense kernel
        np.testing.assert_array_equal(
            index.top_k(np.arange(10), 50), top_k_indices(matrix, 50)
        )

    def test_k_beyond_indexed_width_raises(self):
        index = build_index(random_matrix(10, 20, seed=10), k=3)
        with pytest.raises(ValueError, match="exceeds the indexed width"):
            index.top_k([0], 4)

    def test_out_of_range_nodes_raise(self):
        index = build_index(random_matrix(10, 8, seed=11), k=2)
        with pytest.raises(IndexError):
            index.match([10])
        with pytest.raises(IndexError):
            index.reverse_match([-1])

    def test_invalid_build_parameters(self):
        matrix = random_matrix(4, 4, seed=12)
        with pytest.raises(ValueError):
            build_index(matrix, k=0)
        with pytest.raises(ValueError):
            build_index(matrix, k=2, reverse_k=-1)
        with pytest.raises(ValueError):
            build_index(matrix, k=2, reverse_k=0)
        with pytest.raises(ValueError):
            build_index(np.zeros(3), k=1)

    def test_scalar_node_query(self):
        matrix = random_matrix(10, 10, seed=13)
        index = build_index(matrix, k=2)
        assert index.match(3).shape == (1,)
        assert int(index.match(3)[0]) == int(matrix[3].argmax())

    def test_default_k(self):
        matrix = random_matrix(30, 30, seed=14)
        index = build_index(matrix)
        assert index.k == DEFAULT_INDEX_K

    def test_memory_accounting(self):
        matrix = random_matrix(200, 150, seed=15)
        index = build_index(matrix, k=5)
        assert index.dense_nbytes == 200 * 150 * 8
        assert index.nbytes < index.dense_nbytes
        assert index.compression_ratio > 1.0

    def test_payload_round_trip(self):
        matrix = tie_heavy_matrix(40, 25, seed=16)
        index = build_index(matrix, k=6, reverse_k=3)
        rebuilt = SparseTopKIndex.from_payload(
            index.array_payload(), index.meta_payload()
        )
        assert rebuilt.shape == index.shape
        assert rebuilt.k == index.k and rebuilt.reverse_k == index.reverse_k
        np.testing.assert_array_equal(rebuilt.indices, index.indices)
        np.testing.assert_array_equal(
            rebuilt.reverse_indices, index.reverse_indices
        )

    def test_payload_missing_arrays_raises(self):
        index = build_index(random_matrix(5, 5, seed=17), k=2)
        payload = index.array_payload()
        del payload["index_scores"]
        with pytest.raises(ValueError, match="missing arrays"):
            SparseTopKIndex.from_payload(payload, index.meta_payload())
