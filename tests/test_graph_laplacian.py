"""Tests for repro.graph.laplacian (Eq. 3 and the normalisation scheme)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.laplacian import (
    normalized_laplacian,
    orbit_laplacian,
    reinforced_laplacian,
    self_connection_matrix,
)
from repro.utils.sparse import is_symmetric, sparse_from_edges


def _random_orbit_matrix(rng, n):
    dense = rng.integers(0, 4, size=(n, n)).astype(float)
    dense = np.triu(dense, k=1)
    dense = dense + dense.T
    return sp.csr_matrix(dense)


class TestSelfConnection:
    def test_max_of_row(self):
        orbit = sparse_from_edges([(0, 1), (0, 2)], 3, weights=[2.0, 5.0])
        diag = self_connection_matrix(orbit).diagonal()
        assert diag[0] == 5.0
        assert diag[1] == 2.0
        assert diag[2] == 5.0

    def test_isolated_node_gets_one(self):
        orbit = sparse_from_edges([(0, 1)], 3)
        diag = self_connection_matrix(orbit).diagonal()
        assert diag[2] == 1.0

    def test_empty_matrix_all_ones(self):
        orbit = sp.csr_matrix((4, 4))
        np.testing.assert_array_equal(self_connection_matrix(orbit).diagonal(), np.ones(4))


class TestOrbitLaplacian:
    def test_symmetric(self):
        orbit = sparse_from_edges([(0, 1), (1, 2)], 3, weights=[3.0, 1.0])
        assert is_symmetric(orbit_laplacian(orbit))

    def test_entries_in_unit_interval(self):
        rng = np.random.default_rng(0)
        lap = orbit_laplacian(_random_orbit_matrix(rng, 8)).toarray()
        assert (lap >= 0.0).all()
        assert (lap <= 1.0 + 1e-9).all()

    def test_rejects_negative_weights(self):
        bad = sp.csr_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ValueError):
            orbit_laplacian(bad)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            orbit_laplacian(sp.csr_matrix((2, 3)))

    def test_spectral_radius_at_most_one(self):
        rng = np.random.default_rng(1)
        lap = orbit_laplacian(_random_orbit_matrix(rng, 10)).toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert np.abs(eigenvalues).max() <= 1.0 + 1e-8

    def test_diagonal_positive(self):
        orbit = sparse_from_edges([(0, 1)], 3, weights=[4.0])
        lap = orbit_laplacian(orbit)
        assert (lap.diagonal() > 0).all()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_matrices_produce_finite_laplacians(self, seed):
        rng = np.random.default_rng(seed)
        lap = orbit_laplacian(_random_orbit_matrix(rng, 6))
        assert np.isfinite(lap.toarray()).all()


class TestNormalizedLaplacian:
    def test_identity_for_empty_graph(self):
        lap = normalized_laplacian(sp.csr_matrix((3, 3)))
        np.testing.assert_allclose(lap.toarray(), np.eye(3))

    def test_symmetric(self, triangle_graph):
        assert is_symmetric(normalized_laplacian(triangle_graph.adjacency))

    def test_known_value_for_single_edge(self):
        adjacency = sparse_from_edges([(0, 1)], 2)
        lap = normalized_laplacian(adjacency).toarray()
        np.testing.assert_allclose(lap, np.full((2, 2), 0.5))


class TestReinforcedLaplacian:
    def test_all_ones_is_identity_operation(self, triangle_graph):
        lap = normalized_laplacian(triangle_graph.adjacency)
        reinforced = reinforced_laplacian(lap, np.ones(3))
        np.testing.assert_allclose(reinforced.toarray(), lap.toarray())

    def test_scales_rows_and_columns(self):
        lap = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        reinforced = reinforced_laplacian(lap, np.array([2.0, 1.0])).toarray()
        assert reinforced[0, 1] == pytest.approx(2.0)
        assert reinforced[1, 0] == pytest.approx(2.0)

    def test_length_mismatch_raises(self):
        lap = sp.csr_matrix(np.eye(3))
        with pytest.raises(ValueError):
            reinforced_laplacian(lap, np.ones(2))

    def test_non_positive_factor_raises(self):
        lap = sp.csr_matrix(np.eye(2))
        with pytest.raises(ValueError):
            reinforced_laplacian(lap, np.array([1.0, 0.0]))
