"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "--dataset", "tiny"])
        assert args.method == "HTC"
        assert args.dim == 32
        assert args.epochs == 40

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["align", "--dataset", "imaginary"])

    def test_robustness_ratio_parsing(self):
        args = build_parser().parse_args(
            ["robustness", "--dataset", "bn", "--ratios", "0.1", "0.3"]
        )
        assert args.ratios == [0.1, 0.3]


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "douban" in output
        assert "allmovie_imdb" in output

    def test_align_htc_on_tiny(self, capsys):
        code = main(
            [
                "align",
                "--dataset",
                "tiny",
                "--method",
                "HTC",
                "--epochs",
                "5",
                "--dim",
                "8",
                "--orbits",
                "2",
                "--neighbors",
                "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "p@1" in output
        assert "Orbit importance" in output

    def test_align_baseline(self, capsys):
        code = main(["align", "--dataset", "tiny", "--method", "IsoRank"])
        assert code == 0
        assert "IsoRank" in capsys.readouterr().out

    def test_align_variant(self, capsys):
        code = main(
            [
                "align",
                "--dataset",
                "tiny",
                "--method",
                "HTC-L",
                "--epochs",
                "5",
                "--dim",
                "8",
            ]
        )
        assert code == 0
        assert "HTC-L" in capsys.readouterr().out

    def test_robustness_command(self, capsys):
        code = main(
            [
                "robustness",
                "--dataset",
                "econ",
                "--methods",
                "IsoRank",
                "--ratios",
                "0.1",
                "0.3",
                "--scale",
                "0.25",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Robustness on econ" in output
        assert "0.300" in output
