"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "--dataset", "tiny"])
        assert args.method == "HTC"
        assert args.dim == 32
        assert args.epochs == 40

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["align", "--dataset", "imaginary"])

    def test_robustness_ratio_parsing(self):
        args = build_parser().parse_args(
            ["robustness", "--dataset", "bn", "--ratios", "0.1", "0.3"]
        )
        assert args.ratios == [0.1, 0.3]


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "douban" in output
        assert "allmovie_imdb" in output

    def test_align_htc_on_tiny(self, capsys):
        code = main(
            [
                "align",
                "--dataset",
                "tiny",
                "--method",
                "HTC",
                "--epochs",
                "5",
                "--dim",
                "8",
                "--orbits",
                "2",
                "--neighbors",
                "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "p@1" in output
        assert "Orbit importance" in output

    def test_align_baseline(self, capsys):
        code = main(["align", "--dataset", "tiny", "--method", "IsoRank"])
        assert code == 0
        assert "IsoRank" in capsys.readouterr().out

    def test_align_variant(self, capsys):
        code = main(
            [
                "align",
                "--dataset",
                "tiny",
                "--method",
                "HTC-L",
                "--epochs",
                "5",
                "--dim",
                "8",
            ]
        )
        assert code == 0
        assert "HTC-L" in capsys.readouterr().out

    def test_robustness_command(self, capsys):
        code = main(
            [
                "robustness",
                "--dataset",
                "econ",
                "--methods",
                "IsoRank",
                "--ratios",
                "0.1",
                "0.3",
                "--scale",
                "0.25",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Robustness on econ" in output
        assert "0.300" in output


class TestServeCommands:
    FAST = ["--epochs", "4", "--dim", "8", "--orbits", "2", "--neighbors", "5"]

    def _export(self, tmp_path, capsys, extra=()):
        code = main(
            [
                "export-artifact",
                "--dataset",
                "tiny",
                "--method",
                "HTC",
                "--artifact-root",
                str(tmp_path / "arts"),
                "--index-k",
                "6",
                *self.FAST,
                *extra,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        artifact_id = next(
            line.split()[-1]
            for line in output.splitlines()
            if line.startswith("artifact id:")
        )
        return artifact_id

    def test_export_and_query_roundtrip(self, tmp_path, capsys):
        artifact_id = self._export(tmp_path, capsys)
        code = main(
            [
                "query",
                "--artifact-root",
                str(tmp_path / "arts"),
                "--artifact",
                artifact_id,
                "--op",
                "top-k",
                "--k",
                "3",
                "--nodes",
                "0",
                "1",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["op"] == "top_k"
        assert payload["k"] == 3
        assert payload["artifact_id"] == artifact_id
        assert payload["schema_version"]
        assert payload["engine_version"]
        assert len(payload["results"]) == 2
        assert len(payload["results"][0]) == 3

    def test_query_legacy_format(self, tmp_path, capsys):
        artifact_id = self._export(tmp_path, capsys)
        with pytest.warns(DeprecationWarning, match="--format legacy"):
            code = main(
                [
                    "query",
                    "--artifact-root",
                    str(tmp_path / "arts"),
                    "--artifact",
                    artifact_id,
                    "--op",
                    "top-k",
                    "--k",
                    "3",
                    "--nodes",
                    "0",
                    "1",
                    "--format",
                    "legacy",
                ]
            )
        assert code == 0
        output = capsys.readouterr().out
        lines = [line for line in output.splitlines() if line.strip()]
        assert len(lines) == 2
        assert lines[0].startswith("0:")
        assert len(lines[0].split(":")[1].split()) == 3

    def test_query_match_op(self, tmp_path, capsys):
        artifact_id = self._export(tmp_path, capsys)
        code = main(
            [
                "query",
                "--artifact-root",
                str(tmp_path / "arts"),
                "--artifact",
                artifact_id,
                "--op",
                "reverse-match",
                "--nodes",
                "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["op"] == "reverse_match"
        assert payload["k"] is None
        assert len(payload["results"]) == 1

    def test_catalog_sync_backfills(self, tmp_path, capsys):
        artifact_id = self._export(tmp_path, capsys)
        root = tmp_path / "arts"
        (root / "catalog.sqlite").unlink()  # simulate a pre-catalog store
        code = main(["catalog-sync", "--artifact-root", str(root)])
        assert code == 0
        output = capsys.readouterr().out
        assert "1 registered or updated" in output
        from repro.serve.catalog import ArtifactCatalog

        assert ArtifactCatalog.for_store(root).get(artifact_id) is not None

    def test_serve_stats_lists_artifacts(self, tmp_path, capsys):
        artifact_id = self._export(tmp_path, capsys)
        code = main(["serve-stats", "--artifact-root", str(tmp_path / "arts")])
        assert code == 0
        output = capsys.readouterr().out
        assert artifact_id in output
        assert "tiny" in output

    def test_serve_stats_empty_store(self, tmp_path, capsys):
        code = main(["serve-stats", "--artifact-root", str(tmp_path / "arts")])
        assert code == 1
        assert "no artifacts" in capsys.readouterr().out

    def test_export_baseline_matrix_is_wrapped(self, tmp_path, capsys):
        code = main(
            [
                "export-artifact",
                "--dataset",
                "tiny",
                "--method",
                "Degree",
                "--artifact-root",
                str(tmp_path / "arts"),
                *self.FAST,
            ]
        )
        assert code == 0
        assert "artifact id:" in capsys.readouterr().out


class TestDatasetArguments:
    def test_dir_dataset_accepted_by_parser(self):
        args = build_parser().parse_args(
            ["align", "--dataset", "dir:/some/path"]
        )
        assert args.dataset == "dir:/some/path"

    def test_align_on_dir_dataset(self, tmp_path, capsys):
        from repro.datasets import load_dataset, save_pair

        save_pair(load_dataset("tiny", random_state=0), tmp_path / "exported")
        code = main(
            [
                "align",
                "--dataset",
                f"dir:{tmp_path / 'exported'}",
                "--method",
                "Degree",
            ]
        )
        assert code == 0
        assert "p@1" in capsys.readouterr().out
