"""Chunked-vs-dense cross-validation: every streaming kernel must be
bit-identical to its dense counterpart, for every chunk size, including
degenerate and empty shapes."""

import numpy as np
import pytest

from repro.core import HTCAligner, HTCConfig
from repro.datasets import load_dataset
from repro.similarity.chunked import (
    ChunkedScorer,
    chunked_greedy_match,
    chunked_mutual_nearest_neighbors,
    chunked_score_matrix,
    chunked_top_k_indices,
    resolve_chunk_rows,
    streaming_hubness_degrees,
)
from repro.similarity.csls import csls_matrix
from repro.similarity.lisi import hubness_degrees, lisi_matrix
from repro.similarity.matching import (
    greedy_match,
    mutual_nearest_neighbors,
    top_k_indices,
)
from repro.similarity.measures import (
    BLOCK_ROWS,
    cosine_similarity,
    pearson_similarity,
)

SHAPES = [
    (257, 119, 33),  # crosses several aligned windows, rectangular
    (64, 64, 16),  # exactly one window
    (130, 40, 8),  # partial final window
    (5, 7, 3),  # smaller than one window
    (1, 1, 1),  # minimal
    (0, 5, 3),  # no source rows
    (5, 0, 3),  # no target rows
    (0, 0, 2),  # fully empty
]

CHUNKS = [1, 3, BLOCK_ROWS, 100, 2 * BLOCK_ROWS, 10_000, None]


def _embeddings(n_source, n_target, dim, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n_source, dim)),
        rng.standard_normal((n_target, dim)),
    )


class TestResolveChunkRows:
    def test_rounds_up_to_block_multiple(self):
        assert resolve_chunk_rows(1, 1000) == BLOCK_ROWS
        assert resolve_chunk_rows(BLOCK_ROWS + 1, 1000) == 2 * BLOCK_ROWS
        assert resolve_chunk_rows(BLOCK_ROWS, 1000) == BLOCK_ROWS

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_chunk_rows(0, 10)

    def test_none_uses_default(self):
        assert resolve_chunk_rows(None, 10_000) % BLOCK_ROWS == 0


class TestScoreMatrixBitIdentity:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_lisi_identical(self, shape, chunk):
        source, target = _embeddings(*shape)
        dense = lisi_matrix(source, target, n_neighbors=6)
        chunked = chunked_score_matrix(
            source,
            target,
            measure="pearson",
            correction="lisi",
            n_neighbors=6,
            chunk_rows=chunk,
        )
        np.testing.assert_array_equal(dense, chunked)

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("chunk", [1, 100, None])
    def test_csls_identical(self, shape, chunk):
        source, target = _embeddings(*shape, seed=3)
        dense = csls_matrix(source, target, 4)
        chunked = chunked_score_matrix(
            source,
            target,
            measure="cosine",
            correction="csls",
            n_neighbors=4,
            chunk_rows=chunk,
        )
        np.testing.assert_array_equal(dense, chunked)

    @pytest.mark.parametrize("chunk", [1, 70, None])
    def test_raw_measures_identical(self, chunk):
        source, target = _embeddings(150, 90, 12, seed=5)
        np.testing.assert_array_equal(
            pearson_similarity(source, target),
            chunked_score_matrix(
                source, target, measure="pearson", chunk_rows=chunk
            ),
        )
        np.testing.assert_array_equal(
            cosine_similarity(source, target),
            chunked_score_matrix(
                source, target, measure="cosine", chunk_rows=chunk
            ),
        )

    def test_lisi_chunk_rows_keyword_matches_dense(self):
        source, target = _embeddings(200, 80, 10, seed=7)
        np.testing.assert_array_equal(
            lisi_matrix(source, target, 5),
            lisi_matrix(source, target, 5, chunk_rows=33),
        )

    def test_csls_chunk_rows_keyword_matches_dense(self):
        source, target = _embeddings(200, 80, 10, seed=8)
        np.testing.assert_array_equal(
            csls_matrix(source, target, 5),
            csls_matrix(source, target, 5, chunk_rows=65),
        )

    def test_out_buffer_is_used(self):
        source, target = _embeddings(100, 50, 8)
        out = np.empty((100, 50))
        result = chunked_score_matrix(
            source, target, correction="lisi", chunk_rows=64, out=out
        )
        assert result is out

    def test_invalid_measure_and_correction(self):
        source, target = _embeddings(4, 4, 2)
        with pytest.raises(ValueError):
            ChunkedScorer(source, target, measure="hamming")
        with pytest.raises(ValueError):
            ChunkedScorer(source, target, correction="zscore")


class TestStreamingHubness:
    @pytest.mark.parametrize("shape", [(257, 119, 33), (40, 90, 7), (3, 3, 2)])
    @pytest.mark.parametrize("chunk", [1, 64, 100, None])
    def test_identical_to_dense(self, shape, chunk):
        source, target = _embeddings(*shape, seed=11)
        similarity = pearson_similarity(source, target)
        dense_s, dense_t = hubness_degrees(similarity, 5)
        stream_s, stream_t = streaming_hubness_degrees(
            source, target, 5, chunk_rows=chunk
        )
        np.testing.assert_array_equal(dense_s, stream_s)
        np.testing.assert_array_equal(dense_t, stream_t)

    def test_empty_shapes(self):
        source, target = _embeddings(0, 4, 3)
        stream_s, stream_t = streaming_hubness_degrees(source, target, 3)
        assert stream_s.shape == (0,)
        np.testing.assert_array_equal(stream_t, np.zeros(4))


class TestChunkedMatching:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("chunk", [1, 64, 100, None])
    def test_mutual_nearest_neighbors(self, shape, chunk):
        source, target = _embeddings(*shape, seed=13)
        dense = mutual_nearest_neighbors(
            lisi_matrix(source, target, 4)
            if shape[0] and shape[1]
            else np.zeros(shape[:2])
        )
        chunked = chunked_mutual_nearest_neighbors(
            source, target, correction="lisi", n_neighbors=4, chunk_rows=chunk
        )
        assert dense == chunked

    @pytest.mark.parametrize("shape", [(257, 119, 33), (20, 60, 5), (0, 3, 2)])
    @pytest.mark.parametrize("chunk", [1, 64, None])
    def test_greedy_match(self, shape, chunk):
        source, target = _embeddings(*shape, seed=17)
        dense_matrix = chunked_score_matrix(
            source, target, correction="lisi", n_neighbors=4
        )
        dense = greedy_match(dense_matrix)
        chunked = chunked_greedy_match(
            source, target, correction="lisi", n_neighbors=4, chunk_rows=chunk
        )
        assert dense == chunked

    @pytest.mark.parametrize("k", [1, 4, 200])
    @pytest.mark.parametrize("chunk", [1, 64, None])
    def test_top_k(self, k, chunk):
        source, target = _embeddings(150, 60, 9, seed=19)
        dense = top_k_indices(pearson_similarity(source, target), k)
        chunked = chunked_top_k_indices(
            source, target, k, measure="pearson", chunk_rows=chunk
        )
        np.testing.assert_array_equal(dense, chunked)

    def test_top_k_invalid(self):
        source, target = _embeddings(5, 5, 2)
        with pytest.raises(ValueError):
            chunked_top_k_indices(source, target, 0)

    def test_scorer_row_matches_matrix_row(self):
        source, target = _embeddings(200, 70, 6, seed=23)
        scorer = ChunkedScorer(
            source, target, correction="lisi", n_neighbors=3, chunk_rows=128
        )
        matrix = chunked_score_matrix(
            source, target, correction="lisi", n_neighbors=3
        )
        for i in (0, 63, 64, 199):
            np.testing.assert_array_equal(scorer.row(i), matrix[i])


class TestAlignerChunkedBitIdentity:
    """The acceptance criterion: score_chunk_size must not change HTC."""

    @pytest.mark.parametrize("chunk", [7, 64])
    def test_full_pipeline_identical(self, chunk):
        pair = load_dataset("tiny")
        base = dict(
            epochs=6, embedding_dim=12, random_state=0, orbit_cache="off"
        )
        dense = HTCAligner(HTCConfig(**base)).align(pair)
        chunked = HTCAligner(
            HTCConfig(score_chunk_size=chunk, **base)
        ).align(pair)
        np.testing.assert_array_equal(
            dense.alignment_matrix, chunked.alignment_matrix
        )
        assert dense.trusted_pair_counts == chunked.trusted_pair_counts
        for orbit in dense.orbit_matrices:
            np.testing.assert_array_equal(
                dense.orbit_matrices[orbit], chunked.orbit_matrices[orbit]
            )

    def test_config_rejects_invalid_chunk(self):
        with pytest.raises(ValueError):
            HTCConfig(score_chunk_size=0)
