"""Tests for Linear, GCNLayer, and SharedGCNEncoder."""

import numpy as np
import pytest

from repro.graph.laplacian import normalized_laplacian
from repro.nn.init import glorot_uniform, zeros
from repro.nn.layers import GCNLayer, Linear, SharedGCNEncoder
from repro.nn.tensor import Tensor


class TestInit:
    def test_glorot_bounds(self):
        weights = glorot_uniform(100, 50, random_state=0)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(weights).max() <= limit
        assert weights.shape == (100, 50)

    def test_glorot_deterministic(self):
        np.testing.assert_array_equal(
            glorot_uniform(5, 5, random_state=3), glorot_uniform(5, 5, random_state=3)
        )

    def test_glorot_invalid(self):
        with pytest.raises(ValueError):
            glorot_uniform(0, 5)

    def test_zeros(self):
        np.testing.assert_array_equal(zeros(2, 3), np.zeros((2, 3)))


class TestLinear:
    def test_output_shape(self):
        layer = Linear(3, 5, random_state=0)
        out = layer(Tensor(np.ones((7, 3))))
        assert out.shape == (7, 5)

    def test_no_bias_option(self):
        layer = Linear(3, 5, bias=False, random_state=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_reach_parameters(self):
        layer = Linear(2, 2, random_state=0)
        layer(Tensor(np.ones((4, 2)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestGCNLayer:
    def test_forward_shape(self, triangle_graph):
        laplacian = normalized_laplacian(triangle_graph.adjacency)
        layer = GCNLayer(2, 4, random_state=0)
        out = layer(laplacian, Tensor(np.ones((3, 2))))
        assert out.shape == (3, 4)

    def test_relu_applied(self, triangle_graph):
        laplacian = normalized_laplacian(triangle_graph.adjacency)
        layer = GCNLayer(2, 8, activation="relu", random_state=0)
        out = layer(laplacian, Tensor(np.ones((3, 2))))
        assert (out.data >= 0).all()

    def test_identity_activation_can_be_negative(self, triangle_graph):
        laplacian = normalized_laplacian(triangle_graph.adjacency)
        layer = GCNLayer(2, 50, activation="identity", random_state=0)
        out = layer(laplacian, Tensor(np.ones((3, 2))))
        assert (out.data < 0).any()


class TestSharedGCNEncoder:
    def test_output_dimension(self, triangle_graph):
        encoder = SharedGCNEncoder(2, [8, 4], random_state=0)
        laplacian = normalized_laplacian(triangle_graph.adjacency)
        out = encoder(laplacian, np.ones((3, 2)))
        assert out.shape == (3, 4)
        assert encoder.embedding_dim == 4
        assert encoder.n_layers == 2

    def test_all_layers_option(self, triangle_graph):
        encoder = SharedGCNEncoder(2, [8, 4], random_state=0)
        laplacian = normalized_laplacian(triangle_graph.adjacency)
        layers = encoder(laplacian, np.ones((3, 2)), all_layers=True)
        assert len(layers) == 2
        assert layers[0].shape == (3, 8)
        assert layers[1].shape == (3, 4)

    def test_shared_weights_give_identical_output_for_identical_graphs(
        self, triangle_graph
    ):
        """Sharing the encoder means identical inputs map to identical outputs
        (the mechanism behind the paper's Proposition 1)."""
        encoder = SharedGCNEncoder(2, [8, 4], random_state=0)
        laplacian = normalized_laplacian(triangle_graph.adjacency)
        attrs = np.random.default_rng(0).normal(size=(3, 2))
        out_a = encoder(laplacian, attrs).numpy()
        out_b = encoder(laplacian, attrs).numpy()
        np.testing.assert_array_equal(out_a, out_b)

    def test_empty_hidden_dims_rejected(self):
        with pytest.raises(ValueError):
            SharedGCNEncoder(4, [])

    def test_activation_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SharedGCNEncoder(4, [8, 8], activations=["relu"])

    def test_parameter_count(self):
        encoder = SharedGCNEncoder(5, [7, 3], random_state=0)
        assert encoder.n_parameters() == 5 * 7 + 7 * 3
