"""Tests for repro.utils.logging."""

import logging

from repro.utils.logging import get_logger, set_verbosity


class TestGetLogger:
    def test_namespaces_under_repro(self):
        logger = get_logger("mymodule")
        assert logger.name == "repro.mymodule"

    def test_repro_module_names_kept(self):
        logger = get_logger("repro.core.aligner")
        assert logger.name == "repro.core.aligner"

    def test_same_name_returns_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestSetVerbosity:
    def test_changes_root_level(self):
        set_verbosity(logging.DEBUG)
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)
        assert logging.getLogger("repro").level == logging.WARNING

    def test_root_has_single_handler(self):
        get_logger("a")
        get_logger("b")
        assert len(logging.getLogger("repro").handlers) == 1
