"""Tests for the streaming out-of-core stitch (``repro.shard.streaming``)."""

import numpy as np
import pytest

from repro.core import HTCConfig
from repro.datasets.synthetic import tiny_pair
from repro.serve.index import StreamedIndexAssembler, build_index
from repro.shard import (
    align_sharded,
    build_shard_plan,
    stitch_alignments,
    stitch_alignments_streaming,
)

FAST = dict(epochs=3, embedding_dim=8, orbit_cache="off", random_state=0)


@pytest.fixture(scope="module")
def pair():
    return tiny_pair(n_nodes=60, random_state=0)


@pytest.fixture(scope="module")
def plan(pair):
    return build_shard_plan(pair, 3, overlap=1)


def _shard_matrices(plan, dtype=np.float32):
    matrices = []
    for shard_pair in plan.pairs:
        rng = np.random.default_rng(100 + shard_pair.index)
        matrices.append(
            rng.standard_normal(
                (shard_pair.source_nodes.size, shard_pair.target_nodes.size)
            ).astype(dtype)
        )
    return matrices


def _shard_indexes(plan, matrices, k, reverse_k):
    return [
        build_index(matrix, k=k, reverse_k=reverse_k) for matrix in matrices
    ]


def _assert_same_stitch(memory, streaming):
    assert np.array_equal(memory.index.indices, streaming.index.indices)
    assert np.array_equal(memory.index.scores, streaming.index.scores)
    assert np.array_equal(
        memory.index.reverse_indices, streaming.index.reverse_indices
    )
    assert np.array_equal(
        memory.index.reverse_scores, streaming.index.reverse_scores
    )
    assert streaming.conflicts_resolved == memory.conflicts_resolved
    assert streaming.multi_shard_sources == memory.multi_shard_sources


class TestStreamingParity:
    def test_bit_identical_to_in_memory_stitch(self, pair, plan):
        matrices = _shard_matrices(plan)
        n_s, n_t = pair.source.n_nodes, pair.target.n_nodes
        memory = stitch_alignments(plan, matrices, n_s, n_t, k=5, reverse_k=7)
        streaming = stitch_alignments_streaming(
            plan,
            _shard_indexes(plan, matrices, k=5, reverse_k=7),
            n_s,
            n_t,
            k=5,
            reverse_k=7,
        )
        _assert_same_stitch(memory, streaming)

    @pytest.mark.parametrize("row_window", [1, 7, 64, 10_000])
    def test_row_window_never_changes_the_result(self, pair, plan, row_window):
        matrices = _shard_matrices(plan)
        n_s, n_t = pair.source.n_nodes, pair.target.n_nodes
        memory = stitch_alignments(plan, matrices, n_s, n_t, k=4)
        streaming = stitch_alignments_streaming(
            plan,
            _shard_indexes(plan, matrices, k=4, reverse_k=4),
            n_s,
            n_t,
            k=4,
            row_window=row_window,
        )
        _assert_same_stitch(memory, streaming)

    def test_lazy_loaders_called_once_each(self, pair, plan):
        matrices = _shard_matrices(plan)
        n_s, n_t = pair.source.n_nodes, pair.target.n_nodes
        indexes = _shard_indexes(plan, matrices, k=5, reverse_k=5)
        calls = {"n": 0}

        def counting_loader(index):
            def load():
                calls["n"] += 1
                return index

            return load

        streaming = stitch_alignments_streaming(
            plan,
            [counting_loader(ix) for ix in indexes],
            n_s,
            n_t,
            k=5,
        )
        assert calls["n"] == len(plan.pairs)  # each loader called exactly once
        memory = stitch_alignments(plan, matrices, n_s, n_t, k=5)
        _assert_same_stitch(memory, streaming)

    def test_float64_shard_promotes_the_merged_dtype(self, pair, plan):
        matrices = _shard_matrices(plan)
        matrices[1] = matrices[1].astype(np.float64)
        n_s, n_t = pair.source.n_nodes, pair.target.n_nodes
        memory = stitch_alignments(plan, matrices, n_s, n_t, k=4)
        streaming = stitch_alignments_streaming(
            plan,
            _shard_indexes(plan, matrices, k=4, reverse_k=4),
            n_s,
            n_t,
            k=4,
        )
        assert streaming.index.score_dtype == np.dtype(np.float64)
        _assert_same_stitch(memory, streaming)

    def test_all_float32_stays_float32(self, pair, plan):
        matrices = _shard_matrices(plan)
        streaming = stitch_alignments_streaming(
            plan,
            _shard_indexes(plan, matrices, k=4, reverse_k=4),
            pair.source.n_nodes,
            pair.target.n_nodes,
            k=4,
        )
        assert streaming.index.score_dtype == np.dtype(np.float32)


class TestStreamingWorkdir:
    def test_temp_workdir_is_cleaned_up_but_index_stays_valid(
        self, pair, plan, tmp_path, monkeypatch
    ):
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        matrices = _shard_matrices(plan)
        streaming = stitch_alignments_streaming(
            plan,
            _shard_indexes(plan, matrices, k=4, reverse_k=4),
            pair.source.n_nodes,
            pair.target.n_nodes,
            k=4,
        )
        # The temporary spill directory is gone...
        assert not any(tmp_path.glob("repro_stitch_*"))
        # ...but the memmap-backed result still answers queries (POSIX
        # unlink-while-mapped semantics).
        matches = streaming.match(np.arange(pair.source.n_nodes))
        assert matches.shape == (pair.source.n_nodes,)
        assert np.all(matches >= 0)

    def test_explicit_workdir_keeps_backing_files(self, pair, plan, tmp_path):
        matrices = _shard_matrices(plan)
        stitch_alignments_streaming(
            plan,
            _shard_indexes(plan, matrices, k=4, reverse_k=4),
            pair.source.n_nodes,
            pair.target.n_nodes,
            k=4,
            workdir=tmp_path / "stream",
        )
        backing = sorted(
            p.name for p in (tmp_path / "stream" / "global_index").iterdir()
        )
        assert backing == [
            "fwd_indices.npy",
            "fwd_scores.npy",
            "rev_indices.npy",
            "rev_scores.npy",
        ]


class TestStreamingValidation:
    def test_narrow_index_raises_with_reexport_hint(self, pair, plan):
        matrices = _shard_matrices(plan)
        narrow = _shard_indexes(plan, matrices, k=2, reverse_k=8)
        with pytest.raises(ValueError, match="larger index_k"):
            stitch_alignments_streaming(
                plan,
                narrow,
                pair.source.n_nodes,
                pair.target.n_nodes,
                k=6,
            )

    def test_shard_count_mismatch_raises(self, pair, plan):
        with pytest.raises(ValueError, match="shard pairs"):
            stitch_alignments_streaming(
                plan, [], pair.source.n_nodes, pair.target.n_nodes
            )

    @pytest.mark.parametrize(
        "kwargs", [{"k": 0}, {"reverse_k": 0}, {"row_window": 0}]
    )
    def test_invalid_parameters_raise(self, pair, plan, kwargs):
        matrices = _shard_matrices(plan)
        indexes = _shard_indexes(plan, matrices, k=4, reverse_k=4)
        with pytest.raises(ValueError):
            stitch_alignments_streaming(
                plan,
                indexes,
                pair.source.n_nodes,
                pair.target.n_nodes,
                **{"k": 4, **kwargs},
            )


class TestStreamedIndexAssembler:
    def test_sequential_windows_roundtrip(self):
        assembler = StreamedIndexAssembler(5, 3, score_dtype=np.float32)
        blocks = [
            (0, np.arange(6).reshape(2, 3), np.ones((2, 3), dtype=np.float32)),
            (2, np.arange(9).reshape(3, 3), np.zeros((3, 3), dtype=np.float32)),
        ]
        for start, indices, scores in blocks:
            assembler.write(start, indices.astype(np.intp), scores)
        indices, scores = assembler.finalize()
        assert indices.shape == (5, 3)
        assert scores.dtype == np.float32
        np.testing.assert_array_equal(indices[:2], np.arange(6).reshape(2, 3))

    def test_gap_or_overlap_rejected(self):
        assembler = StreamedIndexAssembler(4, 2)
        assembler.write(0, np.zeros((2, 2), dtype=np.intp), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            assembler.write(3, np.zeros((1, 2), dtype=np.intp), np.zeros((1, 2)))

    def test_incomplete_finalize_rejected(self):
        assembler = StreamedIndexAssembler(4, 2)
        assembler.write(0, np.zeros((2, 2), dtype=np.intp), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            assembler.finalize()


class TestAlignShardedStreaming:
    def test_streaming_equals_memory_end_to_end(self, pair):
        config = HTCConfig(**FAST)
        memory = align_sharded(
            pair, config, shard_count=2, refine_iterations=1
        )
        streaming = align_sharded(
            pair, config, shard_count=2, refine_iterations=1, stitch="streaming"
        )
        assert np.array_equal(memory.index.indices, streaming.index.indices)
        np.testing.assert_allclose(
            np.asarray(memory.index.scores), np.asarray(streaming.index.scores)
        )
        assert streaming.conflicts_resolved == memory.conflicts_resolved

    def test_unknown_stitch_mode_rejected(self, pair):
        with pytest.raises(ValueError, match="stitch"):
            align_sharded(
                pair, HTCConfig(**FAST), shard_count=2, stitch="quantum"
            )
