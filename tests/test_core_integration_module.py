"""Tests for posterior importance assignment (Eq. 15)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.integration import integrate_alignment_matrices, orbit_importance


class TestOrbitImportance:
    def test_weights_sum_to_one(self):
        weights = orbit_importance({0: 10, 1: 30, 2: 60})
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_proportional_to_counts(self):
        weights = orbit_importance({0: 10, 1: 30})
        assert weights[1] == pytest.approx(3 * weights[0])

    def test_all_zero_counts_fall_back_to_uniform(self):
        weights = orbit_importance({0: 0, 5: 0})
        assert weights[0] == pytest.approx(0.5)
        assert weights[5] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            orbit_importance({})

    @given(
        st.dictionaries(
            st.integers(0, 12), st.integers(0, 1000), min_size=1, max_size=13
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_weights_always_normalised(self, counts):
        weights = orbit_importance(counts)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in weights.values())


class TestIntegrateAlignmentMatrices:
    def test_weighted_sum(self):
        matrices = {0: np.ones((2, 2)), 1: np.zeros((2, 2))}
        combined, importance = integrate_alignment_matrices(matrices, {0: 3, 1: 1})
        np.testing.assert_allclose(combined, np.full((2, 2), 0.75))
        assert importance[0] == pytest.approx(0.75)

    def test_single_orbit_passthrough(self):
        matrix = np.random.default_rng(0).normal(size=(3, 4))
        combined, importance = integrate_alignment_matrices({2: matrix}, {2: 7})
        np.testing.assert_allclose(combined, matrix)
        assert importance == {2: 1.0}

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            integrate_alignment_matrices({0: np.eye(2)}, {1: 5})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            integrate_alignment_matrices(
                {0: np.eye(2), 1: np.eye(3)}, {0: 1, 1: 1}
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            integrate_alignment_matrices({}, {})

    def test_better_orbit_dominates_argmax(self):
        """An orbit with far more trusted pairs controls the final argmax."""
        good = np.array([[0.0, 1.0], [1.0, 0.0]])
        bad = np.array([[1.0, 0.0], [0.0, 1.0]])
        combined, _ = integrate_alignment_matrices(
            {0: bad, 1: good}, {0: 1, 1: 99}
        )
        np.testing.assert_array_equal(combined.argmax(axis=1), [1, 0])
