"""Shared fixtures for the test suite.

Expensive fixtures (trained aligners, larger pairs) are session-scoped so the
whole suite stays fast while still exercising the full pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HTCAligner, HTCConfig
from repro.datasets.synthetic import tiny_pair
from repro.graph.builders import from_edge_list


@pytest.fixture
def triangle_graph():
    """A single triangle (3 nodes, 3 edges)."""
    return from_edge_list([(0, 1), (1, 2), (0, 2)], n_nodes=3, name="triangle")


@pytest.fixture
def path_graph():
    """A 4-node path 0-1-2-3."""
    return from_edge_list([(0, 1), (1, 2), (2, 3)], n_nodes=4, name="path4")


@pytest.fixture
def star_graph():
    """A star with centre 0 and three leaves."""
    return from_edge_list([(0, 1), (0, 2), (0, 3)], n_nodes=4, name="star")


@pytest.fixture
def clique_graph():
    """The complete graph K4."""
    edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    return from_edge_list(edges, n_nodes=4, name="k4")


@pytest.fixture
def paw_graph():
    """A tailed triangle: triangle {0,1,2} plus tail edge (2,3)."""
    return from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)], n_nodes=4, name="paw")


@pytest.fixture
def diamond_graph():
    """A diagonal quadrangle: C4 0-1-2-3 plus chord (1,3)."""
    edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
    return from_edge_list(edges, n_nodes=4, name="diamond")


@pytest.fixture
def figure5_graph():
    """The illustrative 5-node graph of the paper's Fig. 5.

    Nodes a=0, b=1, c=2, d=3, e=4 with edges a-b, b-c, c-d, c-e, d-e.
    """
    edges = [(0, 1), (1, 2), (2, 3), (2, 4), (3, 4)]
    return from_edge_list(edges, n_nodes=5, name="figure5")


@pytest.fixture
def attributed_graph():
    """A small attributed graph with 2-dimensional features."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    attrs = np.array(
        [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.5, 0.5]], dtype=np.float64
    )
    return from_edge_list(edges, n_nodes=4, attributes=attrs, name="attributed")


@pytest.fixture(scope="session")
def small_pair():
    """A small self-alignment pair with light noise (40 nodes)."""
    return tiny_pair(n_nodes=40, random_state=0, noise=0.05)


@pytest.fixture(scope="session")
def clean_pair():
    """A noise-free permuted pair: every consistency assumption holds exactly."""
    return tiny_pair(n_nodes=30, random_state=1, noise=0.0)


@pytest.fixture(scope="session")
def fast_config():
    """An HTC configuration small enough for unit tests."""
    return HTCConfig(
        epochs=15,
        embedding_dim=16,
        orbits=range(5),
        n_neighbors=5,
        random_state=0,
    )


@pytest.fixture(scope="session")
def trained_result(small_pair, fast_config):
    """A full HTC alignment result on the small pair (computed once)."""
    return HTCAligner(fast_config).align(small_pair)
