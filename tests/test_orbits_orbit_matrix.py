"""Tests for GOM construction (Eq. 1 and the binary variant)."""

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.orbits.edge_orbits import count_edge_orbits
from repro.orbits.graphlets import EDGE_ORBIT_COUNT
from repro.orbits.orbit_matrix import build_orbit_matrices, orbit_sparsity
from repro.utils.sparse import is_symmetric


class TestBuildOrbitMatrices:
    def test_one_matrix_per_orbit(self, paw_graph):
        matrices = build_orbit_matrices(paw_graph)
        assert len(matrices) == EDGE_ORBIT_COUNT

    def test_subset_of_orbits(self, paw_graph):
        matrices = build_orbit_matrices(paw_graph, orbits=[0, 2])
        assert len(matrices) == 2

    def test_matrices_are_symmetric(self, figure5_graph):
        for matrix in build_orbit_matrices(figure5_graph):
            assert is_symmetric(matrix)

    def test_orbit0_matches_adjacency(self, figure5_graph):
        orbit0 = build_orbit_matrices(figure5_graph, orbits=[0])[0]
        np.testing.assert_array_equal(
            orbit0.toarray(), figure5_graph.adjacency.toarray()
        )

    def test_values_match_edge_counts(self, clique_graph):
        counts = count_edge_orbits(clique_graph)
        matrices = build_orbit_matrices(clique_graph, counts=counts)
        for index, (u, v) in enumerate(counts.edges):
            for orbit in range(EDGE_ORBIT_COUNT):
                assert matrices[orbit][u, v] == counts.counts[index, orbit]
                assert matrices[orbit][v, u] == counts.counts[index, orbit]

    def test_binary_mode(self, clique_graph):
        weighted = build_orbit_matrices(clique_graph, orbits=[2], weighted=True)[0]
        binary = build_orbit_matrices(clique_graph, orbits=[2], weighted=False)[0]
        assert weighted.max() == 2  # each K4 edge is in two triangles
        assert binary.max() == 1
        assert weighted.nnz == binary.nnz

    def test_invalid_orbit_id(self, triangle_graph):
        with pytest.raises(ValueError):
            build_orbit_matrices(triangle_graph, orbits=[99])

    def test_empty_graph(self):
        graph = from_edge_list([(0, 1)], n_nodes=3).subgraph(np.array([2]))
        matrices = build_orbit_matrices(graph)
        assert all(matrix.nnz == 0 for matrix in matrices)
        assert all(matrix.shape == (1, 1) for matrix in matrices)

    def test_higher_orbits_sparser_or_equal(self, figure5_graph):
        """Higher-order GOMs never contain edges absent from orbit 0."""
        matrices = build_orbit_matrices(figure5_graph)
        base = (matrices[0].toarray() > 0)
        for matrix in matrices[1:]:
            present = matrix.toarray() > 0
            assert np.all(base | ~present)

    def test_reuses_precomputed_counts(self, paw_graph):
        counts = count_edge_orbits(paw_graph)
        a = build_orbit_matrices(paw_graph, counts=counts)
        b = build_orbit_matrices(paw_graph)
        for ma, mb in zip(a, b):
            np.testing.assert_array_equal(ma.toarray(), mb.toarray())


class TestOrbitSparsity:
    def test_orbit0_density_is_one(self, figure5_graph):
        matrices = build_orbit_matrices(figure5_graph)
        sparsity = orbit_sparsity(matrices)
        assert sparsity[0] == pytest.approx(1.0)
        assert (sparsity <= 1.0 + 1e-12).all()

    def test_empty_input(self):
        assert orbit_sparsity([]).size == 0
