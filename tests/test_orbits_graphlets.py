"""Tests for repro.orbits.graphlets (the template catalogue)."""

import networkx as nx
import pytest

from repro.orbits.graphlets import (
    EDGE_ORBIT_COUNT,
    EDGE_ORBIT_GRAPHLET,
    EDGE_ORBIT_NAMES,
    GRAPHLET_NAMES,
    NODE_ORBIT_COUNT,
    NODE_ORBIT_GRAPHLET,
    graphlet_templates,
    orbits_for_graphlet,
)


class TestCatalogueConsistency:
    def test_counts(self):
        assert EDGE_ORBIT_COUNT == 13
        assert NODE_ORBIT_COUNT == 15
        assert len(GRAPHLET_NAMES) == 9
        assert len(EDGE_ORBIT_NAMES) == EDGE_ORBIT_COUNT
        assert len(EDGE_ORBIT_GRAPHLET) == EDGE_ORBIT_COUNT
        assert len(NODE_ORBIT_GRAPHLET) == NODE_ORBIT_COUNT

    def test_nine_templates(self):
        assert len(graphlet_templates()) == 9

    def test_template_sizes(self):
        sizes = [t.number_of_nodes() for t in graphlet_templates()]
        assert sizes == [2, 3, 3, 4, 4, 4, 4, 4, 4]

    def test_templates_are_connected(self):
        for template in graphlet_templates():
            assert nx.is_connected(template)

    def test_templates_pairwise_non_isomorphic(self):
        templates = graphlet_templates()
        for i, a in enumerate(templates):
            for b in templates[i + 1 :]:
                assert not nx.is_isomorphic(a, b)

    def test_every_edge_orbit_appears_in_exactly_one_template(self):
        seen = {}
        for graphlet_id, template in enumerate(graphlet_templates()):
            for _, _, data in template.edges(data=True):
                orbit = data["edge_orbit"]
                seen.setdefault(orbit, set()).add(graphlet_id)
        assert set(seen) == set(range(EDGE_ORBIT_COUNT))
        for orbit, graphlets in seen.items():
            assert graphlets == {EDGE_ORBIT_GRAPHLET[orbit]}

    def test_every_node_orbit_appears_in_exactly_one_template(self):
        seen = {}
        for graphlet_id, template in enumerate(graphlet_templates()):
            for _, data in template.nodes(data=True):
                orbit = data["node_orbit"]
                seen.setdefault(orbit, set()).add(graphlet_id)
        assert set(seen) == set(range(NODE_ORBIT_COUNT))
        for orbit, graphlets in seen.items():
            assert graphlets == {NODE_ORBIT_GRAPHLET[orbit]}

    def test_edge_orbits_respect_automorphisms(self):
        """Edges mapped to each other by any automorphism share an orbit label."""
        for template in graphlet_templates():
            matcher = nx.algorithms.isomorphism.GraphMatcher(template, template)
            for mapping in matcher.isomorphisms_iter():
                for u, v, data in template.edges(data=True):
                    image_orbit = template.edges[mapping[u], mapping[v]]["edge_orbit"]
                    assert image_orbit == data["edge_orbit"]

    def test_node_orbits_respect_automorphisms(self):
        for template in graphlet_templates():
            matcher = nx.algorithms.isomorphism.GraphMatcher(template, template)
            for mapping in matcher.isomorphisms_iter():
                for node, data in template.nodes(data=True):
                    assert (
                        template.nodes[mapping[node]]["node_orbit"]
                        == data["node_orbit"]
                    )


class TestOrbitsForGraphlet:
    def test_triangle_orbits(self):
        assert orbits_for_graphlet(2) == [2]

    def test_three_edge_chain_has_two_orbits(self):
        assert orbits_for_graphlet(3) == [3, 4]

    def test_tailed_triangle_has_three_orbits(self):
        assert orbits_for_graphlet(6) == [7, 8, 9]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            orbits_for_graphlet(9)
